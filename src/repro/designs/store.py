"""The cross-process compiled-design store: a file-backed L2 under the cache.

:class:`~repro.designs.cache.DesignCache` amortises compilation *within*
one process; it dies with the process.  Forked grid workers and repeated
CLI invocations therefore each re-compile the same
:class:`~repro.designs.compiled.DesignKey` — exactly the redundancy a
deployment serving one small set of designs cannot afford.
:class:`DesignStore` persists compiled artifacts in a content-addressed
directory so that every process on the machine shares one compilation:

* **layout** — one subdirectory per key, named by the SHA-256 of the key's
  canonical JSON; inside it ``meta.json`` plus one ``.npy`` per compiled
  array (``entries``, ``indptr``, ``dstar``, ``delta``);
* **zero-copy reads** — :meth:`DesignStore.get` attaches the arrays with
  ``np.load(mmap_mode="r")``, so a warm process pays page faults, not
  array copies, and N processes share one page cache;
* **atomic publication** — artifacts are written into a hidden temp
  directory and renamed into place, so readers never observe a partial
  entry (a lost publication race is silently discarded);
* **single-flight compilation** — :meth:`get_or_compile` serialises cold
  compilations of one key *across processes* through an advisory
  ``flock``, so a fleet of workers starting together compiles once;
* **byte-budgeted eviction** — :meth:`gc` removes least-recently-used
  entries over the budget, skipping any entry currently mmap-attached by
  a reader (readers hold a shared lock for the life of their mapping) —
  and reaps crash residue: orphaned publication temp dirs, stale
  ``stats.json`` temp files and aged quarantine holdings past a grace
  period;
* **integrity + self-repair** — every publication writes a per-file
  SHA-256 manifest into ``meta.json``; :meth:`get` verifies it on attach
  (skippable via ``verify=False``), and a corrupt or torn entry is
  **quarantined** — renamed into ``.quarantine/`` for post-mortem, counted
  in :class:`StoreStats` — then transparently recompiled through the
  existing single-flight path.  :meth:`fsck` audits the whole store on
  demand (``design store fsck``).  Verification runs *once per attach*,
  never on the decode hot path, so warm-decode cost is untouched;
* **telemetry** — per-instance :attr:`stats` counters shaped like
  :class:`~repro.designs.cache.CacheStats`, plus cumulative cross-process
  counters persisted in ``stats.json`` (written atomically: tmp +
  ``os.replace``, so a crash mid-write can never corrupt them).

* **fleet tier (L3)** — an optional :class:`~repro.designs.remote.RemoteTier`
  transport (``remote=``, or ambient via ``REPRO_DESIGN_STORE_REMOTE``)
  extends the corpus across machines: a local miss **reads through** to
  the remote (blob fetched, verified against the signed
  ``fleet-manifest.json``, unpacked and verified again at attach — a
  corrupt blob is quarantined exactly like a corrupt local entry), a
  local publish **writes through** (sync, async or not at all via
  ``remote_mode=``), and :meth:`anti_entropy` pulls missing digests,
  pushes local-only ones and reconciles the manifest so divergent
  replicas converge without coordination (``design store sync``).

Layered lookups go **L1 → L2 → L3 → compile**: :func:`fetch_compiled`
composes a :class:`DesignCache` over a :class:`DesignStore` so a hit in
any layer skips compilation and a miss publishes to all.  Like the cache,
the store is opt-in: entry points take ``store=``, and the ambient default
(:func:`resolve_design_store`) is **off** unless ``REPRO_DESIGN_STORE``
names a directory.  Equal keys address bit-identical designs, so no
layer can ever change a result — only skip work.

Examples
--------
>>> import tempfile
>>> from repro.designs import DesignKey, DesignStore, compile_from_key
>>> key = DesignKey.for_stream(64, 12, root_seed=7)
>>> with tempfile.TemporaryDirectory() as root:
...     store = DesignStore(root)
...     cold = store.get_or_compile(key, lambda: compile_from_key(key))
...     warm = store.get(key)                     # second lookup: mmap attach
...     bool((cold.dstar == warm.dstar).all())
True
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from repro.designs.compiled import CompiledDesign, DesignKey
from repro.designs.remote import (
    FLEET_REMOTE_ENV,
    FleetManifest,
    ManifestError,
    RemoteTier,
    pack_entry,
    resolve_fleet_key,
    resolve_remote_tier,
    sha256_file,
    unpack_entry,
)
from repro.faults import trip as _fault_trip

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.designs.cache import DesignCache

try:  # POSIX advisory locking; degraded (still correct single-process) elsewhere
    import fcntl

    _HAS_FLOCK = True
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]
    _HAS_FLOCK = False

__all__ = [
    "DesignStore",
    "StoreStats",
    "StoreEntry",
    "FsckReport",
    "AntiEntropyReport",
    "fetch_compiled",
    "resolve_design_store",
    "default_design_store",
    "reset_default_design_store",
    "DESIGN_STORE_ENV",
    "DESIGN_STORE_BYTES_ENV",
    "STORE_FORMAT_VERSION",
    "RESIDUE_GRACE_S",
]

#: Environment variable naming the ambient store directory.  Unset (or
#: blank) leaves every path store-free — bit-identical to the store never
#: existing.  Explicit ``store=`` arguments always win.
DESIGN_STORE_ENV = "REPRO_DESIGN_STORE"

#: Optional environment byte budget for the ambient store (plain integer).
#: Unset means unbounded — eviction then only runs via ``design store gc``.
DESIGN_STORE_BYTES_ENV = "REPRO_DESIGN_STORE_BYTES"

#: On-disk entry format; bumped on layout changes so stale entries are
#: treated as misses instead of being misread.  Version 2 added the
#: per-file SHA-256 integrity manifest — version-1 entries (no manifest)
#: read as misses and are recompiled, never half-trusted.
STORE_FORMAT_VERSION = 2

#: The compiled arrays every entry persists, in publication order.
_ARRAY_FIELDS = ("entries", "indptr", "dstar", "delta")

#: Grace period (seconds) before :meth:`DesignStore.gc` reaps crash
#: residue — orphaned ``.tmp-*`` publication dirs, stale ``.stats-*``
#: counter temp files and quarantined entries.  Long enough that a slow
#: but live publisher is never swept out from under its own rename.
RESIDUE_GRACE_S = 3600.0

_META_NAME = "meta.json"
_LOCK_NAME = ".lock"
_USED_NAME = ".last-used"
_QUARANTINE_DIR = ".quarantine"


@dataclass(frozen=True)
class StoreStats:
    """Counters snapshot, unified with :class:`~repro.designs.cache.CacheStats`.

    ``hits``/``misses``/``evictions`` count this instance's lifetime (the
    in-process view); ``publishes`` counts artifacts this instance wrote
    and ``quarantined`` the corrupt entries this instance set aside.
    ``entries``/``nbytes`` describe the directory *now* — shared state, so
    they reflect every process's activity.  The ``remote_*`` counters
    cover the fleet tier (all zero while no remote is configured):
    read-through fetches that attached (``remote_hits``) or found nothing
    (``remote_misses``), blobs pushed (``remote_publishes``), corrupt
    blobs set aside (``remote_corrupt``) and fleet manifests rejected for
    a bad signature or malformed contents (``remote_manifest_rejected``).
    """

    hits: int
    misses: int
    evictions: int
    publishes: int
    entries: int
    nbytes: int
    quarantined: int = 0
    remote_hits: int = 0
    remote_misses: int = 0
    remote_publishes: int = 0
    remote_corrupt: int = 0
    remote_manifest_rejected: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (``0.0`` before the first lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class StoreEntry:
    """One persisted artifact: its key, footprint and recency."""

    key: DesignKey
    digest: str
    nbytes: int
    last_used: float
    path: Path


@dataclass(frozen=True)
class FsckReport:
    """Audit result from :meth:`DesignStore.fsck`.

    ``checked`` entries were examined; ``ok`` names passed every manifest
    digest; ``quarantined`` names failed and were set aside; ``residue``
    counts crash leftovers visible in the root (orphaned ``.tmp-*`` dirs
    and stale ``.stats-*`` temp files — reaped by :meth:`DesignStore.gc`,
    not by fsck); ``quarantine_held`` counts entries currently parked in
    ``.quarantine/`` awaiting post-mortem or reaping.
    """

    checked: int
    ok: "tuple[str, ...]" = field(default=())
    quarantined: "tuple[str, ...]" = field(default=())
    residue: int = 0
    quarantine_held: int = 0
    remote_checked: int = 0
    remote_ok: "tuple[str, ...]" = field(default=())
    remote_bad: "tuple[str, ...]" = field(default=())

    @property
    def clean(self) -> bool:
        """True when every checked entry verified and nothing needs attention.

        Held quarantine items count against cleanliness: they are evidence
        of past corruption awaiting post-mortem or reaping, and a clean
        bill of health should not paper over them.  When the remote tier
        was audited (``fsck --remote``), any bad remote blob dirties the
        report the same way.
        """
        return (
            not self.quarantined
            and self.residue == 0
            and self.quarantine_held == 0
            and not self.remote_bad
        )


@dataclass(frozen=True)
class AntiEntropyReport:
    """One :meth:`DesignStore.anti_entropy` sweep's outcome.

    ``pulled``/``pushed`` name the digests that crossed the wire this
    sweep; ``corrupt`` names remote digests whose blobs failed
    verification (set aside, never attached); ``generation`` is the fleet
    manifest generation after the sweep (``0`` when nothing needed
    writing and no manifest existed).
    """

    pulled: "tuple[str, ...]" = field(default=())
    pushed: "tuple[str, ...]" = field(default=())
    corrupt: "tuple[str, ...]" = field(default=())
    generation: int = 0

    @property
    def changed(self) -> bool:
        """Did this sweep move any blob in either direction?"""
        return bool(self.pulled or self.pushed)


def _sha256_file(path: Path) -> str:
    """Streaming SHA-256 of one file (1 MiB chunks; no full-file load)."""
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


class _EntryReadLock:
    """Shared advisory lock held for the lifetime of an mmap attachment.

    :meth:`DesignStore.gc` takes the exclusive side non-blockingly, so an
    entry can never be evicted while any process still holds read mappings
    of its arrays.  The lock's lifetime is tied to the attached
    :class:`~repro.designs.compiled.CompiledDesign` (which keeps a
    reference), releasing automatically when the artifact is dropped.
    """

    def __init__(self, lock_path: Path):
        # _fd must exist before anything can raise: a concurrent eviction
        # between the caller's existence check and this open is an expected
        # race, and __del__ on the half-constructed object must stay silent.
        self._fd: "int | None" = None
        fd = os.open(lock_path, os.O_RDONLY)
        if _HAS_FLOCK:
            try:
                fcntl.flock(fd, fcntl.LOCK_SH)
            except OSError:
                os.close(fd)
                raise
        self._fd = fd

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)  # closing the fd releases the flock
            self._fd = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()


@contextmanager
def _flocked(path: Path, exclusive: bool = True) -> Iterator[int]:
    """Hold an advisory lock on ``path`` for the duration of the block."""
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        if _HAS_FLOCK:
            fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
        yield fd
    finally:
        os.close(fd)


class DesignStore:
    """File-backed, mmap-read, cross-process compiled-design store.

    Parameters
    ----------
    root:
        Directory holding the store (created if missing).  Safe to share
        between any number of concurrent processes on one machine.
    max_bytes:
        Byte budget enforced after every publication (and by :meth:`gc`).
        ``None`` (default) disables automatic eviction.
    keep_blocks:
        Persist the dense ``Ψ`` incidence block alongside the structural
        arrays for residency-eligible designs (the default).  Publication
        then materialises the block once, and every warm attach adopts it
        as a read-only memory map — so a second CLI invocation or forked
        worker decodes with **no** block rebuild (the dominant warm-path
        cost) and all attached processes share one page-cached copy.
        Pass ``False`` for a lean store holding structure only.
    verify:
        Check each entry's SHA-256 manifest on attach (the default).  The
        cost is one streaming hash per (process, key) — off the decode hot
        path entirely.  Pass ``False`` to trust the filesystem (e.g. an
        immutable read-only image already verified once).
    remote:
        The fleet tier (L3): a :class:`~repro.designs.remote.RemoteTier`
        transport, or a spec string/path (``s3://bucket/prefix`` or a
        directory).  ``None`` (default) leaves the store machine-local —
        bit-identical to the fleet tier never existing.  Note the
        constructor never reads ``REPRO_DESIGN_STORE_REMOTE``; ambient
        opt-in flows through :func:`resolve_design_store` only.
    fleet_key:
        HMAC key signing/verifying ``fleet-manifest.json`` (``str`` or
        ``bytes``).  Defaults to ``REPRO_STORE_FLEET_KEY``; unset means
        unsigned manifests (blob/entry digests still guard all content).
    remote_mode:
        Write-through policy for local publishes: ``"sync"`` (default —
        publish returns after the remote push), ``"async"`` (push from a
        daemon thread) or ``"readonly"`` (read-through and explicit
        :meth:`anti_entropy` only).  A failed push never fails the local
        publish — the entry lands locally and anti-entropy repairs the
        fleet later.

    Examples
    --------
    >>> import tempfile
    >>> from repro.designs import DesignKey, DesignStore, compile_from_key
    >>> key = DesignKey.for_stream(32, 8, root_seed=1)
    >>> with tempfile.TemporaryDirectory() as root:
    ...     store = DesignStore(root)
    ...     _ = store.get_or_compile(key, lambda: compile_from_key(key))
    ...     store.stats.publishes, store.stats.entries
    (1, 1)
    """

    def __init__(
        self,
        root: "str | Path",
        max_bytes: "int | None" = None,
        *,
        keep_blocks: bool = True,
        verify: bool = True,
        remote: "RemoteTier | str | Path | None" = None,
        fleet_key: "bytes | str | None" = None,
        remote_mode: str = "sync",
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        if remote_mode not in ("sync", "async", "readonly"):
            raise ValueError(f"remote_mode must be 'sync', 'async' or 'readonly', not {remote_mode!r}")
        self.root = Path(root)
        self.max_bytes = int(max_bytes) if max_bytes is not None else None
        self.keep_blocks = bool(keep_blocks)
        self.verify = bool(verify)
        # The fleet tier: explicit only here (str/Path specs are parsed);
        # ambient REPRO_DESIGN_STORE_REMOTE is resolve_design_store's job.
        self.remote: "RemoteTier | None" = (
            resolve_remote_tier(remote) if isinstance(remote, (str, Path)) else remote
        )
        self.remote_mode = remote_mode
        self._fleet_key = resolve_fleet_key(fleet_key)
        self._locks = self.root / ".locks"
        self._locks.mkdir(parents=True, exist_ok=True)
        self._quarantine_dir = self.root / _QUARANTINE_DIR
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._publishes = 0
        self._quarantined = 0
        self._remote_hits = 0
        self._remote_misses = 0
        self._remote_publishes = 0
        self._remote_corrupt = 0
        self._remote_manifest_rejected = 0

    # -- addressing -------------------------------------------------------------

    @staticmethod
    def digest(key: DesignKey) -> str:
        """Content address of ``key``: SHA-256 of its canonical JSON."""
        return hashlib.sha256(key.to_json().encode("ascii")).hexdigest()

    def entry_dir(self, key: DesignKey) -> Path:
        """Directory that holds (or would hold) ``key``'s artifact."""
        return self.root / self.digest(key)

    def __contains__(self, key: DesignKey) -> bool:
        return (self.entry_dir(key) / _META_NAME).is_file()

    # -- lookups ----------------------------------------------------------------

    def get(self, key: DesignKey) -> "CompiledDesign | None":
        """Attach ``key``'s persisted artifact zero-copy, or ``None``.

        The returned :class:`~repro.designs.compiled.CompiledDesign` wraps
        read-only memory maps of the stored arrays and holds a shared
        advisory lock on the entry, so :meth:`gc` (in this or any other
        process) will not evict it mid-read.  A corrupt or partially
        deleted entry counts as a miss and is quarantined.
        """
        return self._lookup(key, count=True)

    def _lookup(self, key: DesignKey, count: bool) -> "CompiledDesign | None":
        path = self.entry_dir(key)
        if not (path / _META_NAME).is_file():
            # L3 read-through: a local miss consults the fleet tier before
            # giving up.  A successful pull installs a complete, verified
            # entry at `path` and the normal attach path takes over (so a
            # remote-warm lookup still counts as a hit below).
            if self.remote is None or not self._remote_fetch(key):
                if count:
                    self._misses += 1
                    self._bump(misses=1)
                return None
        try:
            compiled = self._attach(path, key)
        except (ValueError, OSError):
            # Truncated arrays, a manifest digest mismatch, a vanished file
            # mid-attach, or meta that no longer matches the key: never
            # serve garbage — quarantine the entry for post-mortem (best
            # effort; an entry locked by a healthy reader is left) and let
            # the miss flow into the single-flight recompile path.
            if count:
                self._misses += 1
                self._bump(misses=1)
            self._quarantine(path)
            return None
        self._hits += 1
        self._bump(hits=1)
        self._touch(path)
        return compiled

    def get_or_compile(self, key: DesignKey, factory: Callable[[], CompiledDesign]) -> CompiledDesign:
        """``get(key)`` or compile-and-publish via ``factory`` on a miss.

        Cold keys are compiled by exactly one process machine-wide: the
        compilation runs under an exclusive per-key file lock, and every
        waiter re-checks the store once the leader publishes.  Mirrors
        :meth:`DesignCache.get_or_compile
        <repro.designs.cache.DesignCache.get_or_compile>` one level down.
        """
        compiled = self.get(key)
        if compiled is not None:
            return compiled
        with _flocked(self._locks / f"{self.digest(key)}.compile"):
            # Re-check without re-counting the miss: if a leader published
            # while this process waited on the lock, that is one logical
            # lookup resolving warm, not a second miss.
            compiled = self._lookup(key, count=False)
            if compiled is not None:
                return compiled
            compiled = factory()
            if compiled.key != key:
                raise ValueError(f"factory produced key {compiled.key}, expected {key}")
            self.publish(compiled)
            return compiled

    # -- publication ------------------------------------------------------------

    def publish(self, compiled: CompiledDesign) -> Path:
        """Persist a compiled artifact atomically; idempotent per key.

        The arrays are written into a hidden temp directory and renamed
        into place, so concurrent readers only ever see complete entries.
        Losing a publication race to another process is silent — the
        surviving entry is bit-identical by the key invariant.
        """
        path = self.entry_dir(compiled.key)
        if (path / _META_NAME).is_file():
            return path  # already published (same key => same bytes)
        tmp = self.root / f".tmp-{path.name[:16]}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        tmp.mkdir(parents=True)
        try:
            design = compiled.design
            arrays = {
                "entries": design.entries,
                "indptr": design.indptr,
                "dstar": compiled.dstar,
                "delta": compiled.delta,
            }
            nbytes = 0
            for name in _ARRAY_FIELDS:
                np.save(tmp / f"{name}.npy", np.ascontiguousarray(arrays[name]))
                nbytes += (tmp / f"{name}.npy").stat().st_size
            with_block = self.keep_blocks and compiled.block_resident
            if with_block:
                # Materialise (at most once — idempotent on the artifact)
                # and persist the dense Ψ block: warm attachers then adopt
                # it as a read-only mmap and skip the block rebuild that
                # otherwise dominates a cold-process decode.
                np.save(tmp / "block.npy", compiled.incidence_block())
                nbytes += (tmp / "block.npy").stat().st_size
            (tmp / _LOCK_NAME).touch()
            (tmp / _USED_NAME).touch()
            payload_names = [f"{name}.npy" for name in _ARRAY_FIELDS]
            if with_block:
                payload_names.append("block.npy")
            meta = {
                "format_version": STORE_FORMAT_VERSION,
                "key": json.loads(compiled.key.to_json()),
                "n": compiled.n,
                "m": compiled.m,
                "nbytes": nbytes,
                "block": with_block,
                # Provenance: the persisted Ψ block's precision (float32 for
                # budget-eligible designs — see CompiledDesign.block_dtype).
                # Attachers adopt whatever dtype block.npy actually holds.
                "block_dtype": str(compiled.block_dtype) if with_block else None,
                # Integrity manifest: every payload file's SHA-256, checked
                # at attach so bit rot and torn writes read as misses (the
                # entry is quarantined and recompiled), never as garbage.
                "sha256": {name: _sha256_file(tmp / name) for name in payload_names},
            }
            (tmp / _META_NAME).write_text(json.dumps(meta, sort_keys=True))
            _fault_trip("store.publish.pre_rename", path=tmp)
            try:
                os.rename(tmp, path)
            except OSError:
                if (path / _META_NAME).is_file():
                    # Lost the race: an identical complete entry landed first.
                    shutil.rmtree(tmp, ignore_errors=True)
                    return path
                # A *partial* directory squats on the address (a writer
                # crashed mid-eviction or mid-copy): it is invisible to
                # lookups and ls/gc, so left alone it would wedge this key
                # into compile-every-call forever.  Clear it and retry once.
                self._discard(path)
                try:
                    os.rename(tmp, path)
                except OSError:
                    shutil.rmtree(tmp, ignore_errors=True)
                    return path
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self._publishes += 1
        self._bump(publishes=1)
        _fault_trip("store.publish", path=path)
        if self.remote is not None and self.remote_mode != "readonly":
            # Write-through to the fleet tier.  A push failure never fails
            # the local publish: the entry landed on this machine, and
            # anti_entropy repairs the fleet on the next sweep.
            if self.remote_mode == "async":
                import threading

                threading.Thread(
                    target=self._remote_publish_quietly, args=(compiled.key,), daemon=True
                ).start()
            else:
                self._remote_publish_quietly(compiled.key)
        if self.max_bytes is not None:
            self.gc()
        return path

    # -- attachment internals ---------------------------------------------------

    def _attach(self, path: Path, key: DesignKey) -> CompiledDesign:
        """Build a read-only, mmap-backed artifact from a complete entry."""
        from repro.core.design import PoolingDesign

        read_lock = _EntryReadLock(path / _LOCK_NAME)
        try:
            meta = json.loads((path / _META_NAME).read_text())
        except (OSError, ValueError) as exc:
            read_lock.close()
            raise ValueError(f"unreadable store entry {path.name}: {exc}") from exc
        if meta.get("format_version") != STORE_FORMAT_VERSION:
            read_lock.close()
            raise ValueError(f"store entry {path.name} has unsupported format {meta.get('format_version')!r}")
        stored_key = DesignKey.from_json(json.dumps(meta.get("key", {})))
        if stored_key != key:
            read_lock.close()
            raise ValueError(f"store entry {path.name} addresses a different key")
        if self.verify:
            try:
                self._verify_manifest(path, meta)
            except ValueError:
                read_lock.close()
                raise
        try:
            loaded = {name: np.load(path / f"{name}.npy", mmap_mode="r") for name in _ARRAY_FIELDS}
            design = PoolingDesign(key.n, loaded["entries"], loaded["indptr"])
            compiled = CompiledDesign(design, dstar=loaded["dstar"], delta=loaded["delta"], key=key, copy=False)
            if meta.get("block") and (path / "block.npy").is_file():
                # Adopt the persisted Ψ block zero-copy: decode-ready with
                # no scatter, and N attached processes share one page cache.
                compiled.adopt_block(np.load(path / "block.npy", mmap_mode="r"))
        except Exception as exc:
            read_lock.close()
            raise ValueError(f"corrupt store entry {path.name}: {exc}") from exc
        # The lock must outlive every mapping; the artifact owns it.
        compiled._store_read_lock = read_lock  # type: ignore[attr-defined]
        return compiled

    @staticmethod
    def _verify_manifest(path: Path, meta: dict) -> None:
        """Check every payload file against the entry's SHA-256 manifest.

        Raises ``ValueError`` on a missing manifest, a missing file or a
        digest mismatch — all of which the caller treats as a corrupt
        entry (quarantine + recompile).
        """
        manifest = meta.get("sha256")
        if not isinstance(manifest, dict) or not manifest:
            raise ValueError(f"store entry {path.name} has no integrity manifest")
        for name, expected in manifest.items():
            target = path / name
            if not target.is_file():
                raise ValueError(f"integrity: store entry {path.name} is missing {name}")
            actual = _sha256_file(target)
            if actual != expected:
                raise ValueError(
                    f"integrity: store entry {path.name} file {name} hash mismatch "
                    f"(expected {expected[:12]}…, found {actual[:12]}…)"
                )

    # -- the fleet tier (L3) ----------------------------------------------------

    def _read_fleet_manifest(self) -> "FleetManifest | None":
        """The remote's verified fleet manifest, or ``None``.

        A manifest that fails parsing, validation or — when a fleet key is
        configured — signature verification is **rejected wholesale** and
        counted; callers then fall back to the transport listing plus full
        per-entry verification, so a tampered manifest can only cost
        staleness, never correctness.
        """
        assert self.remote is not None
        try:
            data = self.remote.get_manifest()
        except (OSError, RuntimeError):
            return None
        if data is None:
            return None
        try:
            return FleetManifest.from_bytes(data, self._fleet_key)
        except ManifestError:
            self._remote_manifest_rejected += 1
            self._bump(remote_manifest_rejected=1)
            return None

    def _update_fleet_manifest(self, updates: "dict[str, dict]") -> int:
        """Fold blob records into the remote manifest (read-modify-write).

        Held under the transport's advisory lock where it has one; the
        ``remote.manifest`` fault site sits between the blob uploads that
        preceded this call and the manifest write itself — the classic
        crashed-publisher window anti-entropy must heal.  Returns the new
        generation.
        """
        assert self.remote is not None
        with self.remote.lock():
            current = self._read_fleet_manifest() or FleetManifest()
            current.entries.update(updates)
            manifest = FleetManifest(entries=current.entries, generation=current.generation + 1)
            _fault_trip("remote.manifest")
            self.remote.put_manifest(manifest.to_bytes(self._fleet_key))
        return manifest.generation

    def _push_digest(self, digest: str, *, upload: bool = True) -> "dict | None":
        """Pack one local entry into its blob; optionally upload it.

        Returns the entry's fleet-manifest record, or ``None`` when the
        local entry is incomplete.  Packing is deterministic, so every
        replica computes identical blob bytes (and hashes) for one key —
        which is what lets a manifest record be rebuilt locally without
        re-downloading the blob.
        """
        path = self.root / digest
        try:
            meta = json.loads((path / _META_NAME).read_text())
            key_doc = meta["key"]
        except (OSError, ValueError, KeyError):
            return None
        staging = self.root / f".tmp-push-{digest[:16]}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        staging.mkdir(parents=True)
        try:
            blob = staging / "blob.tar"
            blob_sha = pack_entry(path, blob)
            record = {"sha256": blob_sha, "nbytes": blob.stat().st_size, "key": key_doc}
            if upload:
                assert self.remote is not None
                _fault_trip("remote.publish", path=blob)
                self.remote.publish(digest, blob)
            return record
        finally:
            shutil.rmtree(staging, ignore_errors=True)

    def remote_publish(self, key: DesignKey) -> bool:
        """Push one locally present entry to the fleet tier (blob + manifest).

        Returns ``False`` when the entry is absent or incomplete locally.
        Raises on transport failure — callers on the publish hot path wrap
        this (:meth:`_remote_publish_quietly`); ``design store push`` and
        :meth:`anti_entropy` surface the counts instead.
        """
        if self.remote is None:
            raise RuntimeError("no remote tier configured (pass remote= or set REPRO_DESIGN_STORE_REMOTE)")
        digest = self.digest(key)
        record = self._push_digest(digest)
        if record is None:
            return False
        self._update_fleet_manifest({digest: record})
        self._remote_publishes += 1
        self._bump(remote_publishes=1)
        return True

    def _remote_publish_quietly(self, key: DesignKey) -> None:
        """Write-through push that degrades to a no-op on any remote failure."""
        try:
            self.remote_publish(key)
        except (OSError, ValueError, RuntimeError):
            pass  # local publish already succeeded; anti-entropy repairs later

    def _quarantine_blob(self, digest: str, blob: Path) -> None:
        """Park a corrupt fetched blob in ``.quarantine/`` for post-mortem."""
        self._remote_corrupt += 1
        self._bump(remote_corrupt=1)
        try:
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(blob, self._quarantine_dir / f"remote-{digest[:16]}-{os.getpid()}-{uuid.uuid4().hex[:8]}.tar")
        except OSError:
            pass  # the staging dir cleanup will drop it; the count stands

    def _remote_fetch(self, key: DesignKey) -> bool:
        """Read-through pull of ``key``'s blob (see :meth:`_pull_digest`)."""
        return self._pull_digest(self.digest(key), expected_key=key)

    def _pull_digest(self, digest: str, expected_key: "DesignKey | None" = None) -> bool:
        """Fetch, verify and install one remote blob as a local entry.

        Verification is belt-and-braces: the blob hash against the signed
        fleet manifest (when it has a record), then the unpacked entry's
        own per-file manifest at attach time.  Any failure — torn
        download, bit-flipped blob, a blob whose inner key does not hash
        to its digest — quarantines the blob and reads as a miss; corrupt
        bytes can never be attached.
        """
        if self.remote is None:
            return False
        manifest = self._read_fleet_manifest()
        record = manifest.entries.get(digest) if manifest is not None else None
        staging = self.root / f".tmp-remote-{digest[:16]}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        try:
            staging.mkdir(parents=True)
            blob = staging / "blob.tar"
            try:
                if record is None and self.remote.stat(digest) is None:
                    self._remote_misses += 1
                    self._bump(remote_misses=1)
                    return False
                self.remote.fetch(digest, blob)
                # The chaos window for a torn/corrupted transfer: truncate
                # or bitflip here is indistinguishable from a mid-stream
                # network fault, and must be caught below, never attached.
                _fault_trip("remote.fetch", path=blob)
            except KeyError:
                self._remote_misses += 1
                self._bump(remote_misses=1)
                return False
            except (OSError, RuntimeError):
                # Transport failure (including injected ones): degrade to a
                # local miss so the caller compiles locally; never fatal.
                self._remote_misses += 1
                self._bump(remote_misses=1)
                return False
            if record is not None and sha256_file(blob) != record["sha256"]:
                self._quarantine_blob(digest, blob)
                return False
            entry_tmp = staging / "entry"
            try:
                meta = unpack_entry(blob, entry_tmp)
                if meta.get("format_version") != STORE_FORMAT_VERSION:
                    raise ValueError(f"unsupported entry format {meta.get('format_version')!r}")
                stored_key = DesignKey.from_json(json.dumps(meta.get("key", {})))
                if self.digest(stored_key) != digest:
                    raise ValueError("blob key does not hash to its digest")
                if expected_key is not None and stored_key != expected_key:
                    raise ValueError("blob addresses a different key")
            except (OSError, ValueError):
                self._quarantine_blob(digest, blob)
                return False
            dest = self.root / digest
            try:
                os.rename(entry_tmp, dest)
            except OSError:
                if not (dest / _META_NAME).is_file():
                    # A partial directory squats on the address; clear it
                    # and retry once (mirrors the local publish path).
                    self._discard(dest)
                    try:
                        os.rename(entry_tmp, dest)
                    except OSError:
                        return (dest / _META_NAME).is_file()
                # else: lost the race to an identical entry — that is a hit.
            self._remote_hits += 1
            self._bump(remote_hits=1)
            return True
        finally:
            shutil.rmtree(staging, ignore_errors=True)

    def anti_entropy(self, *, push: bool = True, pull: bool = True) -> AntiEntropyReport:
        """One self-stabilising sweep: converge this replica with the fleet.

        Pulls every remote digest missing locally (each verified exactly
        like a read-through fetch), pushes every local-only entry, then
        reconciles the signed fleet manifest so it records every blob this
        replica can vouch for — including blobs a crashed publisher
        uploaded without ever updating the manifest.  Any replica may run
        this at any time, concurrently with any other; repeated sweeps
        across divergent replicas converge them to identical entry sets
        (``design store sync``).
        """
        if self.remote is None:
            raise RuntimeError("no remote tier configured (pass remote= or set REPRO_DESIGN_STORE_REMOTE)")
        local = {entry.digest for entry in self.ls()}
        try:
            remote_digests = set(self.remote.list())
        except (OSError, RuntimeError):
            remote_digests = set()
        manifest = self._read_fleet_manifest()
        known_remote = remote_digests | (set(manifest.entries) if manifest is not None else set())
        pulled: "list[str]" = []
        corrupt: "list[str]" = []
        if pull:
            for digest in sorted(known_remote - local):
                failures_before = self._remote_corrupt
                if self._pull_digest(digest):
                    pulled.append(digest)
                elif self._remote_corrupt > failures_before:
                    corrupt.append(digest)
        pushed: "list[str]" = []
        updates: "dict[str, dict]" = {}
        local_now = {entry.digest for entry in self.ls()}
        if push:
            for digest in sorted(local_now - remote_digests):
                try:
                    record = self._push_digest(digest)
                except (OSError, ValueError, RuntimeError):
                    continue
                if record is None:
                    continue
                pushed.append(digest)
                updates[digest] = record
                self._remote_publishes += 1
                self._bump(remote_publishes=1)
        # Manifest repair: record every local entry the manifest does not
        # know yet (e.g. a blob uploaded by a publisher that crashed before
        # its manifest update).  Deterministic packing means the record can
        # be rebuilt locally without re-downloading anything.
        recorded = set(manifest.entries) if manifest is not None else set()
        for digest in sorted((local_now & known_remote) - recorded - set(updates)):
            try:
                record = self._push_digest(digest, upload=False)
            except (OSError, ValueError, RuntimeError):
                continue
            if record is not None:
                updates[digest] = record
        generation = manifest.generation if manifest is not None else 0
        if updates:
            try:
                generation = self._update_fleet_manifest(updates)
            except (OSError, RuntimeError):
                pass  # manifest write lost; blobs landed, the next sweep repairs
        return AntiEntropyReport(
            pulled=tuple(pulled),
            pushed=tuple(pushed),
            corrupt=tuple(corrupt),
            generation=generation,
        )

    def _touch(self, path: Path) -> None:
        """Refresh the entry's recency marker (LRU input for :meth:`gc`)."""
        try:
            os.utime(path / _USED_NAME)
        except OSError:  # pragma: no cover - raced with an eviction
            pass

    def _discard(self, path: Path) -> bool:
        """Remove one entry unless a reader holds its shared lock."""
        lock_path = path / _LOCK_NAME
        try:
            fd = os.open(lock_path, os.O_RDWR)
        except OSError:
            shutil.rmtree(path, ignore_errors=True)  # no lock file: already partial
            return True
        try:
            if _HAS_FLOCK:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    return False  # mmap'd by a live reader somewhere
            shutil.rmtree(path, ignore_errors=True)
            return True
        finally:
            os.close(fd)

    def _quarantine(self, path: Path) -> bool:
        """Set a corrupt entry aside in ``.quarantine/`` for post-mortem.

        A single ``os.rename`` — atomic, so concurrent readers either see
        the (corrupt) entry or a miss, never a half-moved directory.  An
        entry pinned by a live reader's shared lock is left in place (it
        attached before the corruption landed; its mmap view is intact).
        Falls back to :meth:`_discard` if the rename itself fails.
        """
        lock_path = path / _LOCK_NAME
        if lock_path.is_file() and _HAS_FLOCK:
            try:
                fd = os.open(lock_path, os.O_RDWR)
            except OSError:
                pass  # lock vanished: entry is partial, quarantine anyway
            else:
                try:
                    try:
                        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    except OSError:
                        return False  # mmap'd by a live reader somewhere
                finally:
                    os.close(fd)
        dest = self._quarantine_dir / f"{path.name}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        try:
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.rename(path, dest)
        except OSError:
            if not path.exists():
                return True  # raced: another process already moved/removed it
            if not self._discard(path):
                return False
        self._quarantined += 1
        self._bump(quarantined=1)
        return True

    # -- maintenance ------------------------------------------------------------

    def ls(self) -> "list[StoreEntry]":
        """Every complete entry, most recently used first."""
        out = []
        for child in self.root.iterdir():
            meta_path = child / _META_NAME
            if child.name.startswith(".") or not meta_path.is_file():
                continue
            try:
                meta = json.loads(meta_path.read_text())
                key = DesignKey.from_json(json.dumps(meta["key"]))
                used = (child / _USED_NAME).stat().st_mtime if (child / _USED_NAME).exists() else meta_path.stat().st_mtime
                out.append(StoreEntry(key=key, digest=child.name, nbytes=int(meta["nbytes"]), last_used=used, path=child))
            except (OSError, ValueError, KeyError, TypeError):
                continue  # partial/corrupt entries are invisible (and gc'able)
        return sorted(out, key=lambda e: e.last_used, reverse=True)

    def reap_residue(self, *, grace_s: float = RESIDUE_GRACE_S) -> int:
        """Remove crash leftovers older than ``grace_s`` seconds.

        Three shapes of residue accumulate only when a process dies at the
        wrong moment: ``.tmp-*`` publication dirs (publisher crashed
        between write and rename), ``.stats-*`` counter temp files (crash
        between write and ``os.replace``) and ``.quarantine/`` holdings
        (corrupt entries set aside for post-mortem).  Anything younger
        than the grace period is left — a slow but live publisher must
        never lose its tmp dir out from under its own rename.  Returns
        the number of items removed.
        """
        cutoff = time.time() - max(0.0, float(grace_s))
        reaped = 0
        try:
            children = list(self.root.iterdir())
        except OSError:
            return 0
        for child in children:
            if not (child.name.startswith(".tmp-") or child.name.startswith(".stats-")):
                continue
            try:
                if child.stat().st_mtime > cutoff:
                    continue
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
                else:
                    child.unlink()
                reaped += 1
            except OSError:
                continue  # raced with the owner finishing; leave it
        if self._quarantine_dir.is_dir():
            for held in list(self._quarantine_dir.iterdir()):
                try:
                    if held.stat().st_mtime > cutoff:
                        continue
                    shutil.rmtree(held, ignore_errors=True)
                    reaped += 1
                except OSError:
                    continue
        return reaped

    def gc(self, max_bytes: "int | None" = None, *, residue_grace_s: float = RESIDUE_GRACE_S) -> "list[StoreEntry]":
        """Evict least-recently-used entries until the store fits the budget.

        Crash residue past ``residue_grace_s`` is reaped first (see
        :meth:`reap_residue`) — even with no byte budget, so an unbounded
        store still self-cleans.  Entries whose shared read lock is held
        (mmap-attached in any process) are skipped, as is the single most
        recently used entry — a store under byte pressure still serves
        its hottest design.  Returns the evicted entries.
        """
        self.reap_residue(grace_s=residue_grace_s)
        budget = self.max_bytes if max_bytes is None else int(max_bytes)
        if budget is None:
            return []
        entries = self.ls()  # most recent first
        total = sum(e.nbytes for e in entries)
        evicted: "list[StoreEntry]" = []
        # entries[0] (the MRU entry) is never a candidate — not even when
        # every older entry is pinned by a reader lock: a store under byte
        # pressure must still serve its hottest design.
        for entry in reversed(entries[1:]):  # oldest first
            if total <= budget:
                break
            if self._discard(entry.path):
                total -= entry.nbytes
                evicted.append(entry)
        if evicted:
            self._evictions += len(evicted)
            self._bump(evictions=len(evicted))
        return evicted

    def clear(self) -> None:
        """Drop every evictable entry (counters are kept)."""
        for entry in self.ls():
            if self._discard(entry.path):
                self._evictions += 1
                self._bump(evictions=1)

    def fsck(self, *, remote: bool = False) -> FsckReport:
        """Audit every entry's integrity manifest; quarantine failures.

        Verification reads metadata and streams file hashes — no numpy
        attach, no mmap, so auditing a large store never perturbs reader
        page caches.  Entries failing any digest (or predating the
        manifest format) are quarantined exactly as a corrupt attach
        would be.  Exposed as ``design store fsck`` on the CLI.

        With ``remote=True`` (CLI: ``fsck --remote``) the fleet tier is
        audited too: every remote blob is fetched into scratch space and
        verified — against the signed fleet manifest's record when it has
        one, else by unpacking and checking the entry's own per-file
        manifest.  Remote blobs are *reported*, never quarantined: another
        replica may hold the good copy, and repair is anti-entropy's job.
        """
        ok: "list[str]" = []
        bad: "list[str]" = []
        for entry in self.ls():
            try:
                meta = json.loads((entry.path / _META_NAME).read_text())
                if meta.get("format_version") != STORE_FORMAT_VERSION:
                    raise ValueError(f"unsupported format {meta.get('format_version')!r}")
                self._verify_manifest(entry.path, meta)
            except (OSError, ValueError):
                if self._quarantine(entry.path):
                    bad.append(entry.digest)
                continue
            ok.append(entry.digest)
        residue = sum(
            1
            for child in self.root.iterdir()
            if child.name.startswith(".tmp-") or child.name.startswith(".stats-")
        )
        held = len(list(self._quarantine_dir.iterdir())) if self._quarantine_dir.is_dir() else 0
        remote_ok: "list[str]" = []
        remote_bad: "list[str]" = []
        if remote and self.remote is not None:
            remote_ok, remote_bad = self._fsck_remote()
        return FsckReport(
            checked=len(ok) + len(bad),
            ok=tuple(ok),
            quarantined=tuple(bad),
            residue=residue,
            quarantine_held=held,
            remote_checked=len(remote_ok) + len(remote_bad),
            remote_ok=tuple(remote_ok),
            remote_bad=tuple(remote_bad),
        )

    def _fsck_remote(self) -> "tuple[list[str], list[str]]":
        """Verify every remote blob (manifest record or full unpack check)."""
        assert self.remote is not None
        manifest = self._read_fleet_manifest()
        records = manifest.entries if manifest is not None else {}
        try:
            remote_digests = set(self.remote.list())
        except (OSError, RuntimeError):
            remote_digests = set()
        ok: "list[str]" = []
        bad: "list[str]" = []
        for digest in sorted(remote_digests | set(records)):
            staging = self.root / f".tmp-fsck-{digest[:16]}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
            try:
                staging.mkdir(parents=True)
                blob = staging / "blob.tar"
                try:
                    self.remote.fetch(digest, blob)
                except (KeyError, OSError, RuntimeError):
                    bad.append(digest)  # manifest names a blob the remote lost
                    continue
                record = records.get(digest)
                if record is not None:
                    good = sha256_file(blob) == record["sha256"]
                else:
                    try:
                        meta = unpack_entry(blob, staging / "entry")
                        self._verify_manifest(staging / "entry", meta)
                        good = self.digest(DesignKey.from_json(json.dumps(meta.get("key", {})))) == digest
                    except (OSError, ValueError):
                        good = False
                (ok if good else bad).append(digest)
            finally:
                shutil.rmtree(staging, ignore_errors=True)
        return ok, bad

    # -- telemetry --------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total persisted bytes across complete entries."""
        return sum(e.nbytes for e in self.ls())

    def __len__(self) -> int:
        return len(self.ls())

    @property
    def stats(self) -> StoreStats:
        """This instance's counters plus the directory's current footprint."""
        entries = self.ls()
        return StoreStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            publishes=self._publishes,
            entries=len(entries),
            nbytes=sum(e.nbytes for e in entries),
            quarantined=self._quarantined,
            remote_hits=self._remote_hits,
            remote_misses=self._remote_misses,
            remote_publishes=self._remote_publishes,
            remote_corrupt=self._remote_corrupt,
            remote_manifest_rejected=self._remote_manifest_rejected,
        )

    def persistent_stats(self) -> "dict[str, int]":
        """Cumulative counters across every process that used this root."""
        keys = (
            "hits",
            "misses",
            "evictions",
            "publishes",
            "quarantined",
            "remote_hits",
            "remote_misses",
            "remote_publishes",
            "remote_corrupt",
            "remote_manifest_rejected",
        )
        try:
            raw = json.loads((self.root / "stats.json").read_text())
            return {k: int(raw.get(k, 0)) for k in keys}
        except (OSError, ValueError, TypeError):
            return {k: 0 for k in keys}

    def _bump(self, **deltas: int) -> None:
        """Fold counter deltas into the shared ``stats.json`` atomically.

        Runs on every lookup, which is a deliberate tradeoff: a lookup is
        once per (process, key) behind an L1 cache — and even cache-less,
        the flock+rewrite (~tens of µs) is <1% of the mmap-attach+decode
        it accompanies — in exchange for exact cross-process telemetry
        (``design store stats``).  If a future workload makes this lock
        contended, batch the hit/miss deltas per instance and flush them
        on publish/evict.
        """
        stats_path = self.root / "stats.json"
        with _flocked(self._locks / "stats.lock"):
            counters = self.persistent_stats()
            for name, delta in deltas.items():
                counters[name] = counters.get(name, 0) + delta
            tmp = stats_path.with_name(f".stats-{os.getpid()}-{uuid.uuid4().hex[:8]}.json")
            tmp.write_text(json.dumps(counters, sort_keys=True))
            os.replace(tmp, stats_path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"DesignStore(root={str(self.root)!r}, entries={s.entries}, nbytes={s.nbytes}, "
            f"hits={s.hits}, misses={s.misses}, publishes={s.publishes}, evictions={s.evictions})"
        )


def fetch_compiled(
    key: DesignKey,
    factory: Callable[[], CompiledDesign],
    *,
    cache: "DesignCache | None" = None,
    store: "DesignStore | None" = None,
) -> CompiledDesign:
    """Layered compiled-design lookup: **L1 cache → L2 store → compile**.

    A cache hit costs a dict lookup; a store hit costs an mmap attach (and
    is admitted into the cache); a full miss compiles once — single-flight
    within the process (cache) *and* across processes (store) — and
    publishes to both layers.  With neither layer configured this is just
    ``factory()``.
    """
    if cache is not None:
        if store is not None:
            return cache.get_or_compile(key, lambda: store.get_or_compile(key, factory))
        return cache.get_or_compile(key, factory)
    if store is not None:
        return store.get_or_compile(key, factory)
    return factory()


_default_stores: "dict[tuple[str, int | None, str | None], DesignStore]" = {}


def default_design_store(
    root: "str | Path",
    max_bytes: "int | None" = None,
    remote: "str | None" = None,
) -> DesignStore:
    """The process-wide store for ``root`` (one instance per configuration)."""
    spec = (str(Path(root)), max_bytes, remote)
    store = _default_stores.get(spec)
    if store is None:
        store = _default_stores[spec] = DesignStore(root, max_bytes=max_bytes, remote=remote)
    return store


def resolve_design_store(store: "DesignStore | None" = None) -> "DesignStore | None":
    """Resolve a ``store=`` argument against the ambient configuration.

    An explicit store wins; otherwise ``REPRO_DESIGN_STORE`` (a directory
    path) opts the process into a shared ambient store, optionally
    budgeted by ``REPRO_DESIGN_STORE_BYTES`` and extended to the fleet
    tier by ``REPRO_DESIGN_STORE_REMOTE`` (a directory or
    ``s3://bucket/prefix`` spec; manifests signed when
    ``REPRO_STORE_FLEET_KEY`` is set).  Unset means ``None`` — all paths
    bit-identical to the store never existing.
    """
    if store is not None:
        return store
    root = os.environ.get(DESIGN_STORE_ENV, "").strip()
    if not root:
        return None
    raw_bytes = os.environ.get(DESIGN_STORE_BYTES_ENV, "").strip()
    max_bytes = int(raw_bytes) if raw_bytes else None
    remote = os.environ.get(FLEET_REMOTE_ENV, "").strip() or None
    return default_design_store(root, max_bytes=max_bytes, remote=remote)


def reset_default_design_store() -> None:
    """Drop the memoised ambient stores (tests re-keying the environment)."""
    _default_stores.clear()
