"""A persistent fork-based worker pool that survives worker crashes.

Why not ``multiprocessing.Pool``?  Four reasons that matter here:

1. **Warm shared state.**  Tasks reference :class:`~repro.parallel.sharedmem.SharedArray`
   descriptors; workers cache their attachments between tasks, so a sweep
   over hundreds of ``m`` values pays the attach cost once.
2. **Deterministic task→result mapping.**  Results are returned in
   submission order regardless of completion order, which keeps reductions
   bit-reproducible.
3. **Observable failure.**  A worker exception is re-raised in the parent as
   :class:`PoolError` carrying the original traceback text; transient
   resource failures (``MemoryError``, ``BrokenPipeError``) surface as the
   structured, retryable :class:`RetryableTaskError` instead of a raw
   multiprocessing traceback.
4. **Crash healing.**  A SIGKILL'd (OOM-killed, segfaulted…) worker is
   *detected* — the parent polls child liveness instead of blocking on the
   result pipes forever — and *healed*: a replacement worker is forked
   into the pool and the dead worker's in-flight task is re-dispatched,
   with a bounded per-task retry budget.  Only when the budget is
   exhausted does :meth:`WorkerPool.map` raise a structured
   :class:`WorkerCrashError`.  Because equal payloads produce equal
   results, a healed run is bit-identical to a fault-free one (the chaos
   suite in ``tests/test_faults.py`` injects real SIGKILLs to prove it).

Healing relies on exact in-flight accounting: each worker talks to the
parent over its own private duplex pipe and holds at most one task at a
time, so the parent always knows which task died with which worker — no
guessing against a shared queue.  The per-worker pipes are not a styling
choice but the crash-safety load-bearing wall: a shared
``multiprocessing.Queue`` serialises all workers through one write lock
held by a background feeder thread, and a worker SIGKILL'd in the window
after its result is consumed but before its feeder releases that lock
poisons the queue for every surviving worker — the parent then waits
forever on results that can no longer arrive.  With one pipe per worker
a dying process can only ever break its own channel, which the parent
observes as EOF and heals.  Tasks in this codebase are coarse (trial
batches, design compiles, Ψ row blocks), so the one-in-flight dispatch
costs nothing measurable.

The pool prefers the ``fork`` start method (cheap, copy-on-write module
state).  On platforms without ``fork`` it falls back to ``spawn``; tasks
must then be module-level callables, which all library kernels are.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import time
import traceback
from collections import deque
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "WorkerPool",
    "PoolError",
    "WorkerCrashError",
    "RetryableTaskError",
    "resolve_workers",
]

_SENTINEL = ("__stop__", None, None, None)

#: How often the parent wakes from the result pipes to check child liveness.
_LIVENESS_POLL_S = 0.2

#: Exceptions a worker reports as retryable: transient resource pressure,
#: not a logic error in the task.
_RETRYABLE_EXCEPTIONS = (MemoryError, BrokenPipeError)


class PoolError(RuntimeError):
    """A task failed inside a worker; carries the remote traceback text."""

    #: Whether retrying the same payload can reasonably succeed.
    retryable = False

    def __init__(self, message: str, remote_traceback: str = ""):
        super().__init__(message)
        self.remote_traceback = remote_traceback


class RetryableTaskError(PoolError):
    """A task failed from transient resource pressure (``MemoryError``,
    ``BrokenPipeError``): structured and safe to retry, instead of a raw
    multiprocessing traceback leaking to the caller."""

    retryable = True


class WorkerCrashError(PoolError):
    """A worker died and the in-flight task exhausted its retry budget.

    Carries the dead worker pids seen during the map and the offending
    task index — enough for a supervisor to log, alert and re-submit.
    """

    retryable = True

    def __init__(self, message: str, *, pids: "tuple[int, ...]" = (), task_id: "int | None" = None):
        super().__init__(message)
        self.pids = tuple(pids)
        self.task_id = task_id


def resolve_workers(workers: "int | None") -> int:
    """Translate a ``workers`` argument into a concrete process count.

    ``None`` or ``0`` means "all available cores" (respecting CPU affinity
    when the platform exposes it); negative values are rejected.
    """
    if workers is None or workers == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise TypeError("workers must be an int or None")
    if workers < 0:
        raise ValueError("workers must be >= 0")
    return workers


def _worker_loop(
    conn: "mp_connection.Connection",
    blas_threads: "int | None" = None,
    cores: "tuple[int, ...] | None" = None,
) -> None:
    """Worker main: recv ``(kind, task_id, fn, payload)``, send results.

    All traffic flows over the worker's private duplex ``conn`` — sends
    happen synchronously in this thread, never via a background feeder, so
    the process dies (or is killed) only at well-defined points and no
    shared lock can be orphaned (see the module docstring).

    ``blas_threads``/``cores`` apply the pool's thread-governance policy
    inside the worker itself (not at fork time), so it holds for spawned
    workers and survives anything the parent does to its own pool after
    forking.
    """
    if cores:
        try:
            os.sched_setaffinity(0, cores)
        except (AttributeError, OSError):  # pragma: no cover - non-Linux / revoked cores
            pass
    if blas_threads is not None:
        from repro.kernels.threads import set_blas_threads

        set_blas_threads(blas_threads)
    from repro.faults import trip

    cache: dict = {}
    while True:
        try:
            kind, task_id, fn, payload = conn.recv()
        except (EOFError, OSError):  # parent went away: nothing left to serve
            break
        if kind == "__stop__":
            break
        try:
            trip("worker.task")  # chaos site: SIGKILL / delay at the Nth task
            result = fn(payload, cache)
            conn.send((task_id, "ok", result, "", os.getpid()))
        except _RETRYABLE_EXCEPTIONS as exc:
            conn.send((task_id, "err_retryable", repr(exc), traceback.format_exc(), os.getpid()))
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            conn.send((task_id, "err", repr(exc), traceback.format_exc(), os.getpid()))


class _Worker:
    """One pool member: its process, private duplex pipe and in-flight task."""

    __slots__ = ("proc", "conn", "assigned")

    def __init__(self, proc: "mp.process.BaseProcess", conn: "mp_connection.Connection"):
        self.proc = proc
        self.conn = conn
        self.assigned: "int | None" = None


class WorkerPool:
    """Persistent process pool executing ``fn(payload, cache)`` tasks.

    ``cache`` is a per-worker dict that survives across tasks — the
    idiomatic place to stash shared-memory attachments.

    With ``workers == 1`` the pool runs tasks inline in the parent process
    (no subprocess at all), which makes single-worker runs trivially
    debuggable and exactly as reproducible as the parallel path.

    ``blas_threads`` caps each worker's BLAS threadpool (applied inside the
    worker via :mod:`repro.kernels.threads` — the cure for ``W × T``
    oversubscription); ``pin_cores`` optionally pins worker ``i`` to the
    ``i``-th core tuple via ``sched_setaffinity``.  In the inline
    (``workers == 1``) case the cap is applied scoped around each
    :meth:`map` call instead, so the parent's pool configuration is
    restored afterwards.

    ``max_task_retries`` bounds crash healing: a task whose worker dies is
    re-dispatched to a respawned worker at most this many times before
    :meth:`map` gives up with :class:`WorkerCrashError`.  ``0`` disables
    healing (any worker death fails the map immediately).
    """

    def __init__(
        self,
        workers: "int | None" = None,
        *,
        blas_threads: "int | None" = None,
        pin_cores: "Sequence[tuple[int, ...]] | None" = None,
        max_task_retries: int = 2,
    ):
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        self.workers = resolve_workers(workers)
        self.blas_threads = blas_threads
        self.max_task_retries = int(max_task_retries)
        self._pin_cores = [tuple(c) for c in pin_cores] if pin_cores else None
        self._ctx: "mp.context.BaseContext | None" = None
        self._members: "list[_Worker]" = []
        self._inline_cache: dict = {}
        self._closed = False
        self._dead_pids: "list[int]" = []  #: every crashed-worker pid this pool healed
        self._respawns = 0  #: how many replacement workers were forked
        if self.workers > 1:
            self._ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
            for i in range(self.workers):
                self._members.append(self._spawn_member(i))

    def _spawn_member(self, index: int) -> _Worker:
        assert self._ctx is not None
        cores = self._pin_cores[index % len(self._pin_cores)] if self._pin_cores else None
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_loop,
            args=(child_conn, self.blas_threads, cores),
            daemon=True,
        )
        proc.start()
        # Drop the parent's copy of the child end: the worker is then the
        # *only* writer, so its death closes the channel and the parent
        # reads a clean EOF instead of blocking on a half-dead pipe.
        child_conn.close()
        return _Worker(proc, parent_conn)

    # -- telemetry --------------------------------------------------------------

    @property
    def crashed_pids(self) -> "tuple[int, ...]":
        """Pids of every worker death this pool detected (healed or fatal)."""
        return tuple(self._dead_pids)

    @property
    def respawns(self) -> int:
        """How many replacement workers healing forked into the pool."""
        return self._respawns

    # -- execution ---------------------------------------------------------------

    def map(self, fn: Callable[[Any, dict], Any], payloads: Sequence[Any], timeout: float = 600.0) -> "list[Any]":
        """Run ``fn`` over payloads; results in submission order.

        A worker that dies mid-task is replaced and its task re-dispatched
        (at most ``max_task_retries`` times per task).  Raises
        :class:`PoolError` if any task fails, :class:`WorkerCrashError`
        when healing gives up, or a timeout :class:`PoolError` after
        ``timeout`` seconds with no completion or heal event.
        """
        if self._closed:
            raise PoolError("pool already shut down")
        payloads = list(payloads)
        if not payloads:
            return []
        if self.workers == 1:
            from repro.kernels.threads import blas_thread_limit

            with blas_thread_limit(self.blas_threads):
                return [fn(p, self._inline_cache) for p in payloads]
        n = len(payloads)
        results: "list[Any]" = [None] * n
        done = [False] * n
        retries = [0] * n
        pending: "deque[int]" = deque(range(n))
        received = 0
        last_progress = time.monotonic()
        while received < n:
            self._dispatch(fn, payloads, pending)
            ready = mp_connection.wait([m.conn for m in self._members], timeout=_LIVENESS_POLL_S)
            if not ready:
                healed = self._heal(pending, retries)
                if healed:
                    last_progress = time.monotonic()
                elif time.monotonic() - last_progress > timeout:
                    self.shutdown(force=True)
                    raise PoolError(f"pool timed out after {timeout}s") from None
                continue
            by_conn = {id(m.conn): m for m in self._members}
            progressed = False
            for conn in ready:
                member = by_conn.get(id(conn))
                if member is None:  # pragma: no cover - healed mid-iteration
                    continue
                try:
                    task_id, kind, value, tb, _worker_pid = member.conn.recv()
                except (EOFError, OSError):
                    # The worker died; its private channel reports it as a
                    # clean EOF (nobody else's traffic shares the pipe, so
                    # nothing is poisoned). Liveness healing reaps it.
                    self._heal(pending, retries)
                    progressed = True
                    continue
                progressed = True
                member.assigned = None
                if kind == "ok":
                    if not done[task_id]:  # a healed duplicate is bit-identical; first wins
                        results[task_id] = value
                        done[task_id] = True
                        received += 1
                    continue
                self.shutdown(force=True)
                if kind == "err_retryable":
                    raise RetryableTaskError(
                        f"task {task_id} failed with a transient resource error: {value}", remote_traceback=tb
                    )
                raise PoolError(f"task {task_id} failed: {value}", remote_traceback=tb)
            if progressed:
                last_progress = time.monotonic()
        return results

    def _dispatch(self, fn, payloads, pending: "deque[int]") -> None:
        """Hand each idle worker its next task (one in flight per worker)."""
        for member in self._members:
            if not pending:
                return
            if member.assigned is None:
                task_id = pending.popleft()
                member.assigned = task_id
                try:
                    member.conn.send(("task", task_id, fn, payloads[task_id]))
                except (BrokenPipeError, OSError):
                    # Dead before it could accept the task: put the task
                    # back and let the liveness poll heal the worker.
                    member.assigned = None
                    pending.appendleft(task_id)
                    return

    def _heal(self, pending: "deque[int]", retries: "list[int]") -> bool:
        """Detect dead workers; respawn them and re-dispatch their tasks.

        Returns ``True`` when a heal happened.  Raises
        :class:`WorkerCrashError` when a lost task is out of retries.
        """
        dead = [(i, m) for i, m in enumerate(self._members) if not m.proc.is_alive()]
        if not dead:
            return False
        for index, member in dead:
            pid = member.proc.pid
            self._dead_pids.append(pid if pid is not None else -1)
            member.proc.join(timeout=1.0)
            lost = member.assigned
            if lost is not None:
                retries[lost] += 1
                if retries[lost] > self.max_task_retries:
                    self.shutdown(force=True)
                    raise WorkerCrashError(
                        f"worker process(es) died: pids {self._dead_pids}; "
                        f"task {lost} lost {retries[lost]} times (retry budget {self.max_task_retries})",
                        pids=tuple(self._dead_pids),
                        task_id=lost,
                    )
                pending.appendleft(lost)  # re-dispatch first: the oldest task is the most waited-on
            member.conn.close()
            self._members[index] = self._spawn_member(index)
            self._respawns += 1
        return True

    def starmap_indices(
        self, fn: Callable[[Any, dict], Any], index_payloads: Iterable[Any], timeout: float = 600.0
    ) -> "list[Any]":
        """Alias of :meth:`map` accepting any iterable (materialised once)."""
        return self.map(fn, list(index_payloads), timeout=timeout)

    # -- lifecycle --------------------------------------------------------------

    def shutdown(self, force: bool = False) -> None:
        """Stop workers. Idempotent. ``force`` kills instead of joining."""
        if self._closed:
            return
        self._closed = True
        if self._members:
            for member in self._members:
                if not force:
                    try:
                        member.conn.send(_SENTINEL)
                    except (ValueError, OSError):  # pragma: no cover - pipe already gone
                        pass
            for member in self._members:
                if force:
                    member.proc.terminate()
                member.proc.join(timeout=10.0)
                if member.proc.is_alive():  # pragma: no cover - last resort
                    member.proc.kill()
                    member.proc.join(timeout=5.0)
                member.conn.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(force=exc_type is not None)

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.shutdown(force=True)
        except Exception:
            pass
