"""In-loop tests for the serve stack: coalescer, decoder pool, server core.

Everything here runs the real :class:`DecodeServer` (or its pieces) inside
the test's own event loop — no subprocesses.  The end-to-end transport
tests (subprocess, SIGTERM, CLI flags) live in ``test_serve_e2e.py``.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.core.mn import MNDecoder, mn_reconstruct
from repro.core.signal import random_signal
from repro.designs import CompiledDecoder, Decoder, DesignKey, compile_from_key
from repro.serve import (
    Coalescer,
    DecodeRequest,
    DecodeServer,
    DecoderPool,
    ProtocolError,
    ServeClient,
    ServeConfig,
)

KEY_A = DesignKey.for_stream(120, 40, root_seed=3)
KEY_B = DesignKey.for_stream(90, 30, root_seed=4)


def make_case(key, k, seed):
    """One decode case: (y, offline support) for a fresh weight-k signal."""
    compiled = compile_from_key(key)
    sigma = random_signal(key.n, k, np.random.default_rng(seed))
    y = compiled.query_results(sigma)
    support = np.flatnonzero(mn_reconstruct(compiled.design, y, k)).tolist()
    return y, support


class _FakeCompiled:
    """Minimal CompiledDecoder whose batches block on an external gate."""

    def __init__(self, gate=None):
        self._gate = gate

    def decode(self, y, k):
        return self.decode_batch(y[None, :], k)[0]

    def decode_batch(self, Y, k):
        if self._gate is not None:
            self._gate.wait()
        return np.zeros((len(np.atleast_2d(Y)), 4), dtype=np.int8)


class _FakeDecoder:
    """Counts compiles; optionally gates decodes or fails compilation."""

    def __init__(self, gate=None, compile_error=None, compile_delay=0.0):
        self._gate = gate
        self._error = compile_error
        self._delay = compile_delay
        self.compiles = 0

    def compile(self, key, *, cache=None, store=None):
        self.compiles += 1
        if self._delay:
            time.sleep(self._delay)
        if self._error is not None:
            raise self._error
        return _FakeCompiled(self._gate)


class TestDecoderProtocol:
    def test_mn_decoder_satisfies_decoder_protocol(self):
        assert isinstance(MNDecoder(), Decoder)

    def test_compiled_mn_decoder_satisfies_compiled_protocol(self):
        compiled = MNDecoder().compile(KEY_B)
        assert isinstance(compiled, CompiledDecoder)

    def test_fakes_satisfy_the_protocols_structurally(self):
        # The serve layer types against the protocol, so any structural
        # implementation (like the test fakes) must be accepted.
        assert isinstance(_FakeDecoder(), Decoder)
        assert isinstance(_FakeCompiled(), CompiledDecoder)


class TestDecoderPool:
    def test_read_through_then_hit(self):
        async def run():
            pool = DecoderPool(_FakeDecoder(), max_designs=4)
            first = await pool.get(KEY_A)
            second = await pool.get(KEY_A)
            assert first is second
            assert (pool.hits, pool.misses) == (1, 1)

        asyncio.run(run())

    def test_single_flight_compile(self):
        async def run():
            decoder = _FakeDecoder(compile_delay=0.05)
            pool = DecoderPool(decoder, max_designs=4)
            a, b, c = await asyncio.gather(pool.get(KEY_A), pool.get(KEY_A), pool.get(KEY_A))
            assert a is b is c
            assert decoder.compiles == 1

        asyncio.run(run())

    def test_lru_eviction_at_capacity(self):
        async def run():
            pool = DecoderPool(_FakeDecoder(), max_designs=1)
            await pool.get(KEY_A)
            await pool.get(KEY_B)
            assert len(pool) == 1
            assert pool.evictions == 1
            await pool.get(KEY_A)  # A was evicted: recompiles
            assert pool.misses == 3

        asyncio.run(run())

    def test_unservable_key_raises_structured_bad_key(self):
        async def run():
            pool = DecoderPool(_FakeDecoder(compile_error=ValueError("no such design")))
            with pytest.raises(ProtocolError) as err:
                await pool.get(KEY_A)
            assert err.value.code == "bad_key"
            assert "no such design" in err.value.message
            assert len(pool) == 0  # failure is not cached as an entry

        asyncio.run(run())

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            DecoderPool(_FakeDecoder(), max_designs=0)


def _request(key, y, k, request_id, decoder="mn"):
    y = np.asarray(y, dtype=np.int64)
    y.setflags(write=False)
    return DecodeRequest(request_id=request_id, key=key, y=y, k=k, decoder=decoder)


class TestCoalescerAdmission:
    def test_overload_is_bounded_and_structured(self):
        async def run():
            gate = threading.Event()
            pool = DecoderPool(_FakeDecoder(gate))
            coalescer = Coalescer(pool, window_s=0.0, max_batch=1, max_queue=3)
            y = [0] * KEY_A.m
            futures = [coalescer.submit(_request(KEY_A, y, 2, i)) for i in range(3)]
            assert coalescer.stats.admitted == 3
            with pytest.raises(ProtocolError) as err:
                coalescer.submit(_request(KEY_A, y, 2, "rejected"))
            assert err.value.code == "overloaded"
            assert err.value.request_id == "rejected"
            assert coalescer.stats.overloaded == 1
            assert coalescer.stats.admitted == 3  # the refused request was never buffered
            gate.set()
            await asyncio.gather(*futures)
            assert coalescer.stats.admitted == 0
            # Degrade-and-recover: capacity freed, submissions flow again.
            done = coalescer.submit(_request(KEY_A, y, 2, "after"))
            await done
            coalescer.begin_drain()
            await coalescer.drain()
            assert coalescer.stats.peak_admitted == 3

        asyncio.run(run())

    def test_drain_refuses_new_submissions(self):
        async def run():
            coalescer = Coalescer(DecoderPool(_FakeDecoder()), window_s=5.0)
            first = coalescer.submit(_request(KEY_A, [0] * KEY_A.m, 2, "in-before"))
            coalescer.begin_drain()  # flushes the open bucket immediately
            with pytest.raises(ProtocolError) as err:
                coalescer.submit(_request(KEY_A, [0] * KEY_A.m, 2, "too-late"))
            assert err.value.code == "shutting_down"
            await coalescer.drain()
            assert first.done() and not first.cancelled()

        asyncio.run(run())

    def test_compile_failure_fails_each_request_with_its_own_id(self):
        async def run():
            pool = DecoderPool(_FakeDecoder(compile_error=ValueError("bad")))
            coalescer = Coalescer(pool, window_s=0.0, max_batch=2)
            futures = [coalescer.submit(_request(KEY_A, [0] * KEY_A.m, 2, f"r{i}")) for i in range(2)]
            results = await asyncio.gather(*futures, return_exceptions=True)
            assert [r.code for r in results] == ["bad_key", "bad_key"]
            assert sorted(r.request_id for r in results) == ["r0", "r1"]

        asyncio.run(run())


class TestCoalescerBatching:
    def test_size_trigger_flushes_immediately(self):
        async def run():
            pool = DecoderPool(MNDecoder())
            coalescer = Coalescer(pool, window_s=60.0, max_batch=4)  # window too long to fire in-test
            cases = [make_case(KEY_A, 5, seed) for seed in range(4)]
            futures = [coalescer.submit(_request(KEY_A, y, 5, i)) for i, (y, _) in enumerate(cases)]
            supports = await asyncio.gather(*futures)
            for support, (_, offline) in zip(supports, cases):
                assert support.tolist() == offline
            assert coalescer.stats.batches == 1
            assert coalescer.stats.max_batch_seen == 4

        asyncio.run(run())

    def test_window_trigger_flushes_partial_batch(self):
        async def run():
            coalescer = Coalescer(DecoderPool(MNDecoder()), window_s=0.01, max_batch=64)
            y, offline = make_case(KEY_A, 4, seed=11)
            support = await coalescer.submit(_request(KEY_A, y, 4, "solo"))
            assert support.tolist() == offline
            assert coalescer.stats.batches == 1
            assert coalescer.stats.mean_batch == 1.0

        asyncio.run(run())

    def test_heterogeneous_k_in_one_batch_stays_bit_identical(self):
        async def run():
            coalescer = Coalescer(DecoderPool(MNDecoder()), window_s=60.0, max_batch=3)
            cases = [make_case(KEY_A, k, seed=20 + k) for k in (3, 5, 8)]
            futures = [coalescer.submit(_request(KEY_A, y, k, k)) for (y, _), k in zip(cases, (3, 5, 8))]
            supports = await asyncio.gather(*futures)
            for support, (_, offline) in zip(supports, cases):
                assert support.tolist() == offline
            assert coalescer.stats.batches == 1  # one ragged-k dispatch, not three

        asyncio.run(run())

    def test_distinct_keys_batch_separately(self):
        async def run():
            coalescer = Coalescer(DecoderPool(MNDecoder()), window_s=0.01, max_batch=64)
            ya, offline_a = make_case(KEY_A, 5, seed=31)
            yb, offline_b = make_case(KEY_B, 5, seed=32)
            sa, sb = await asyncio.gather(
                coalescer.submit(_request(KEY_A, ya, 5, "a")),
                coalescer.submit(_request(KEY_B, yb, 5, "b")),
            )
            assert sa.tolist() == offline_a
            assert sb.tolist() == offline_b
            assert coalescer.stats.batches == 2
            assert coalescer.stats.max_batch_seen == 1

        asyncio.run(run())


class TestMultiDecoder:
    """One pool/coalescer serving several registry decoders, keyed (key, name)."""

    def test_pool_keeps_separate_entries_per_decoder(self):
        async def run():
            decoders = {"mn": _FakeDecoder(), "omp": _FakeDecoder()}
            pool = DecoderPool(decoders, max_designs=4)
            assert pool.decoder_names() == ("mn", "omp")
            assert pool.default_decoder == "mn"
            a = await pool.get(KEY_A, "mn")
            b = await pool.get(KEY_A, "omp")
            assert a is not b
            assert len(pool) == 2
            assert decoders["mn"].compiles == 1
            assert decoders["omp"].compiles == 1
            assert await pool.get(KEY_A) is a  # None resolves to the default

        asyncio.run(run())

    def test_pool_rejects_unserved_decoder_name(self):
        async def run():
            pool = DecoderPool({"mn": _FakeDecoder()})
            with pytest.raises(ProtocolError) as err:
                await pool.get(KEY_A, "martian")
            assert err.value.code == "bad_request"
            assert "mn" in err.value.message  # the menu of served names

        asyncio.run(run())

    def test_pool_rejects_empty_mapping(self):
        with pytest.raises(ValueError):
            DecoderPool({})

    def test_bare_decoder_serves_under_mn(self):
        async def run():
            pool = DecoderPool(_FakeDecoder())
            assert pool.decoder_names() == ("mn",)
            await pool.get(KEY_A, "mn")  # explicit name hits the wrapped entry
            assert len(pool) == 1

        asyncio.run(run())

    def test_pool_evict_is_per_decoder(self):
        async def run():
            pool = DecoderPool({"mn": _FakeDecoder(), "omp": _FakeDecoder()}, max_designs=4)
            await pool.get(KEY_A, "mn")
            await pool.get(KEY_A, "omp")
            assert pool.evict(KEY_A, "omp")
            assert len(pool) == 1
            assert not pool.evict(KEY_A, "omp")  # already gone
            assert pool.evict(KEY_A)  # default name: the mn entry

        asyncio.run(run())

    def test_same_key_different_decoders_never_share_a_batch(self):
        async def run():
            pool = DecoderPool({"mn": _FakeDecoder(), "omp": _FakeDecoder()})
            coalescer = Coalescer(pool, window_s=0.01, max_batch=64)
            y = [0] * KEY_A.m
            await asyncio.gather(
                coalescer.submit(_request(KEY_A, y, 2, "a", decoder="mn")),
                coalescer.submit(_request(KEY_A, y, 2, "b", decoder="omp")),
            )
            assert coalescer.stats.batches == 2
            assert coalescer.stats.max_batch_seen == 1

        asyncio.run(run())

    def test_breaker_is_per_decoder_with_bare_key_back_compat(self):
        async def run():
            coalescer = Coalescer(DecoderPool({"mn": _FakeDecoder(), "omp": _FakeDecoder()}))
            assert coalescer.breaker(KEY_A) is coalescer.breaker(KEY_A, "mn")
            assert coalescer.breaker(KEY_A, "omp") is not coalescer.breaker(KEY_A, "mn")

        asyncio.run(run())

    def test_registry_decoders_serve_their_own_results(self):
        """mn and omp coalesce separately and each returns its own decode."""
        from repro.designs import make_decoder

        async def run():
            pool = DecoderPool({name: make_decoder(name) for name in ("mn", "omp")})
            coalescer = Coalescer(pool, window_s=0.01, max_batch=64)
            compiled = compile_from_key(KEY_A)
            sigma = random_signal(KEY_A.n, 4, np.random.default_rng(44))
            y = compiled.query_results(sigma)
            s_mn, s_omp = await asyncio.gather(
                coalescer.submit(_request(KEY_A, y, 4, "a", decoder="mn")),
                coalescer.submit(_request(KEY_A, y, 4, "b", decoder="omp")),
            )
            expected_mn = np.flatnonzero(make_decoder("mn").compile(compiled).decode(y, 4))
            expected_omp = np.flatnonzero(make_decoder("omp").compile(compiled).decode(y, 4))
            assert s_mn.tolist() == expected_mn.tolist()
            assert s_omp.tolist() == expected_omp.tolist()
            assert coalescer.stats.batches == 2

        asyncio.run(run())


class TestDecodeServer:
    """The full server core over a real TCP transport, in-loop."""

    @staticmethod
    async def _start(config):
        server = DecodeServer(MNDecoder(), config)
        host, port = await server.start_tcp()
        return server, host, port

    def test_interleaved_clients_get_their_own_rows(self):
        async def run():
            server, host, port = await self._start(ServeConfig(batch_window_ms=5.0))
            n_clients, per_client = 6, 2
            cases = {
                (c, i): make_case(KEY_A if (c + i) % 2 == 0 else KEY_B, 5, seed=100 + 10 * c + i)
                for c in range(n_clients)
                for i in range(per_client)
            }

            async def one_client(c):
                async with await ServeClient.connect(host, port) as client:
                    keys = {(c, i): KEY_A if (c + i) % 2 == 0 else KEY_B for i in range(per_client)}
                    responses = await asyncio.gather(
                        *[client.decode(keys[(c, i)], cases[(c, i)][0], 5, request_id=f"{c}/{i}") for i in range(per_client)]
                    )
                    return {(c, i): r for i, r in enumerate(responses)}

            merged = {}
            for part in await asyncio.gather(*[one_client(c) for c in range(n_clients)]):
                merged.update(part)
            for (c, i), response in merged.items():
                assert response["ok"], response
                assert response["request_id"] == f"{c}/{i}"  # own row, not a neighbour's
                assert response["support"] == cases[(c, i)][1]
            stats = server.coalescer.stats
            assert stats.requests == n_clients * per_client
            assert stats.batches < stats.requests  # coalescing actually happened
            await server.drain()

        asyncio.run(run())

    def test_malformed_line_answers_and_connection_survives(self):
        async def run():
            server, host, port = await self._start(ServeConfig(batch_window_ms=1.0))
            async with await ServeClient.connect(host, port) as client:
                await client.send_raw("definitely not json")
                err = await client.next_unmatched()
                assert err["ok"] is False
                assert err["request_id"] is None
                assert err["error"]["code"] == "bad_request"
                # Same connection still serves good requests afterwards.
                y, offline = make_case(KEY_B, 4, seed=50)
                response = await client.decode(KEY_B, y, 4)
                assert response["ok"] and response["support"] == offline
            await server.drain()

        asyncio.run(run())

    def test_structured_errors_carry_offending_request_id(self):
        async def run():
            server, host, port = await self._start(ServeConfig(batch_window_ms=1.0))
            import json

            async with await ServeClient.connect(host, port) as client:
                bad_key = await client.request({"design_key": {"nope": 1}, "y": [1], "k": 1}, request_id="bk")
                assert (bad_key["request_id"], bad_key["error"]["code"]) == ("bk", "bad_key")
                wrong_y = await client.request(
                    {"design_key": json.loads(KEY_B.to_json()), "y": [1, 2], "k": 1}, request_id="wy"
                )
                assert (wrong_y["request_id"], wrong_y["error"]["code"]) == ("wy", "bad_y")
                bad_k = await client.request(
                    {"design_key": json.loads(KEY_B.to_json()), "y": [0] * KEY_B.m, "k": 0}, request_id="wk"
                )
                assert (bad_k["request_id"], bad_k["error"]["code"]) == ("wk", "bad_k")
            await server.drain()

        asyncio.run(run())

    def test_request_timeout_is_structured(self):
        async def run():
            # Window far beyond the deadline: the batch never flushes in time.
            server, host, port = await self._start(ServeConfig(batch_window_ms=10_000.0, timeout_ms=50.0))
            async with await ServeClient.connect(host, port) as client:
                y, _ = make_case(KEY_A, 3, seed=60)
                response = await client.decode(KEY_A, y, 3, request_id="slow")
                assert response["ok"] is False
                assert response["error"]["code"] == "timeout"
                assert response["request_id"] == "slow"
            await server.drain()

        asyncio.run(run())

    def test_server_overload_response(self):
        async def run():
            config = ServeConfig(batch_window_ms=10_000.0, max_batch=1024, max_queue=2, timeout_ms=200.0)
            server, host, port = await self._start(config)
            async with await ServeClient.connect(host, port) as client:
                y, _ = make_case(KEY_A, 3, seed=70)
                pending = [asyncio.ensure_future(client.decode(KEY_A, y, 3, request_id=f"p{i}")) for i in range(2)]
                while server.coalescer.stats.admitted < 2:  # both admitted, parked in the window
                    await asyncio.sleep(0.001)
                refused = await client.decode(KEY_A, y, 3, request_id="over")
                assert refused["ok"] is False
                assert refused["error"]["code"] == "overloaded"
                assert refused["request_id"] == "over"
                parked = await asyncio.gather(*pending)
                assert all(r["error"]["code"] == "timeout" for r in parked)
            await server.drain()
            assert server.coalescer.stats.overloaded == 1

        asyncio.run(run())

    def test_drain_answers_admitted_requests(self):
        async def run():
            # Long window: requests are parked when the drain begins, and the
            # drain's bucket flush must still decode and answer them.
            server, host, port = await self._start(ServeConfig(batch_window_ms=10_000.0))
            client = await ServeClient.connect(host, port)
            cases = [make_case(KEY_A, 5, seed=80 + i) for i in range(3)]
            pending = [
                asyncio.ensure_future(client.decode(KEY_A, y, 5, request_id=i)) for i, (y, _) in enumerate(cases)
            ]
            while server.coalescer.stats.admitted < 3:
                await asyncio.sleep(0.001)
            await server.drain()
            responses = await asyncio.gather(*pending)
            for response, (_, offline) in zip(responses, cases):
                assert response["ok"], response
                assert response["support"] == offline
            await client.close()

        asyncio.run(run())


class TestServeConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_window_ms": -1.0},
            {"max_batch": 0},
            {"max_queue": 0},
            {"max_designs": 0},
            {"timeout_ms": 0.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_unit_conversions(self):
        config = ServeConfig(batch_window_ms=2.5, timeout_ms=1500.0)
        assert config.window_s == pytest.approx(0.0025)
        assert config.timeout_s == pytest.approx(1.5)
