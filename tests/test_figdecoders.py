"""Tests for the decoder-comparison phase diagram (figdecoders)."""

import numpy as np
import pytest

from repro.engine.grid import run_batched_point
from repro.experiments.figdecoders import DEFAULT_DECODER_GRID, run_figdecoders
from repro.experiments.fignoise import DEFAULT_M_FACTOR, THETA_SEED_STRIDE
from repro.experiments.io import read_csv, results_dir
from repro.core.thresholds import m_mn_threshold

THETAS = (0.2, 0.3)
N, M, TRIALS, SEED = 300, 160, 5, 3


class TestStatisticalContract:
    """Cells are paired: streams keyed by (seed, point), never the decoder."""

    def test_mn_column_bit_identical_to_batched_point(self):
        series = run_figdecoders(
            n=N, decoders=("mn", "comp"), thetas=THETAS, m=M, trials=TRIALS, root_seed=SEED
        )
        mn = next(s for s in series if s.decoder == "mn")
        for ti, theta in enumerate(THETAS):
            ref = run_batched_point(
                N, M, theta=theta, trials=TRIALS, root_seed=SEED + THETA_SEED_STRIDE * ti, point_id=0
            )
            assert mn.points[ti].success.mean == float(np.mean([bool(s) for s in ref.success]))
            assert mn.points[ti].overlap.mean == float(np.mean(ref.overlap))

    def test_workers_do_not_change_results(self):
        kwargs = dict(n=N, decoders=("mn", "dd"), thetas=(0.3,), m=M, trials=TRIALS, root_seed=SEED)
        serial = run_figdecoders(workers=1, **kwargs)
        fanned = run_figdecoders(workers=2, **kwargs)
        for s, f in zip(serial, fanned):
            assert s.decoder == f.decoder
            for ps, pf in zip(s.points, f.points):
                assert ps == pf

    def test_default_m_is_the_mn_operating_point(self):
        series = run_figdecoders(n=N, decoders=("mn",), thetas=(0.2,), trials=2, root_seed=SEED)
        expected = int(np.ceil(DEFAULT_M_FACTOR * m_mn_threshold(N, 0.2)))
        assert series[0].points[0].m == expected


class TestValidation:
    def test_unknown_decoder_lists_menu(self):
        with pytest.raises(ValueError, match="martian.*mn"):
            run_figdecoders(n=N, decoders=("mn", "martian"), thetas=(0.2,), trials=2)

    def test_empty_decoder_grid_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            run_figdecoders(n=N, decoders=(), thetas=(0.2,), trials=2)

    def test_default_grid_is_the_full_registry_comparison(self):
        assert DEFAULT_DECODER_GRID == ("mn", "lp", "omp", "amp", "comp", "dd")


class TestOutputs:
    def test_series_shape_and_critical_theta(self):
        series = run_figdecoders(
            n=N, decoders=("mn", "comp"), thetas=THETAS, m=M, trials=TRIALS, root_seed=SEED
        )
        assert [s.decoder for s in series] == ["mn", "comp"]
        for s in series:
            assert len(s.points) == len(THETAS)
            assert all(0.0 <= p.success.mean <= 1.0 for p in s.points)
        # critical_theta: first θ under the floor, None when never under it.
        always_on = series[0]
        assert always_on.critical_theta(floor=0.0) is None
        assert always_on.critical_theta(floor=1.1) == THETAS[0]

    def test_csv_written(self, tmp_path, monkeypatch):
        monkeypatch.setenv("POOLED_REPRO_RESULTS", str(tmp_path))
        run_figdecoders(
            n=N,
            decoders=("mn", "dd"),
            thetas=(0.2,),
            m=M,
            trials=TRIALS,
            root_seed=SEED,
            csv_name="figdecoders_test",
        )
        headers, rows = read_csv(results_dir() / "figdecoders_test.csv")
        assert headers[:6] == ["decoder", "theta", "n", "m", "k", "success"]
        assert sorted(r[0] for r in rows) == ["dd", "mn"]
        assert all(int(r[11]) == TRIALS for r in rows)
