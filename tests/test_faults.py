"""The chaos suite: deterministic fault injection against every recovery path.

Each test arms a seeded :class:`repro.faults.FaultPlan` (programmatically
or through ``REPRO_FAULT_PLAN`` for subprocesses/forked workers), lets a
real fault fire at a production trip site, and asserts two things:

1. the substrate **recovers** (heals the pool, quarantines + recompiles
   the store entry, retries / breaks the circuit at the serve layer), and
2. every recovered result is **bit-identical** to a fault-free run — the
   stack's core invariant extended into the failure domain.

Covered here: SIGKILL'd workers mid-map, bit-flipped and truncated store
artifacts, a publisher killed between tmp-write and rename, decode
failures healing through retry and the circuit breaker's half-open probe,
client reconnect-with-replay across a dropped connection, and the fleet
tier's failure domain — torn fetches, bit-flipped remote blobs, a
publisher crashed between blob upload and manifest update, and racing
concurrent syncs (``remote.fetch`` / ``remote.publish`` /
``remote.manifest`` trip sites).
"""

import asyncio
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.mn import MNDecoder, mn_reconstruct
from repro.core.signal import random_signal
from repro.designs import DesignKey, DesignStore, compile_from_key
from repro.engine import SerialBackend, SharedMemBackend, run_trial_grid
from repro.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    InjectedFault,
    bitflip_file,
    reset_ambient_plan,
    set_ambient_plan,
    truncate_file,
)
from repro.parallel import RetryableTaskError, WorkerCrashError, WorkerPool
from repro.serve import Coalescer, DecodeRequest, DecodeServer, DecoderPool, ProtocolError, ServeClient, ServeConfig
from repro.serve.breaker import CircuitBreaker

KEY = DesignKey.for_stream(160, 30, root_seed=21)

_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture
def ambient_fault():
    """Install a programmatic ambient plan; always clean up the global."""
    yield set_ambient_plan
    reset_ambient_plan()


@pytest.fixture
def fault_env(monkeypatch):
    """Arm ``REPRO_FAULT_PLAN`` for this process's future forks."""

    def arm(spec: str) -> None:
        monkeypatch.setenv(FAULT_PLAN_ENV, spec)
        reset_ambient_plan()  # drop any cached plan so the env is re-read

    yield arm
    reset_ambient_plan()


def _square(payload, cache):
    return payload * payload


def _raise_memory_error(payload, cache):
    raise MemoryError(f"simulated allocation failure on payload {payload}")


def make_case(key, k, seed):
    """One decode case: (y, offline support) for a fresh weight-k signal."""
    compiled = compile_from_key(key)
    sigma = random_signal(key.n, k, np.random.default_rng(seed))
    y = compiled.query_results(sigma)
    support = np.flatnonzero(mn_reconstruct(compiled.design, y, k)).tolist()
    return y, support


def _request(key, y, k, request_id):
    y = np.asarray(y, dtype=np.int64)
    y.setflags(write=False)
    return DecodeRequest(request_id=request_id, key=key, y=y, k=k)


class TestFaultPlan:
    def test_parse_roundtrip(self):
        spec = "worker.task:kill@2;serve.decode:exception@1x2;store.publish:bitflip=dstar.npy;worker.task:delay@1x*=0.05"
        plan = FaultPlan.parse(spec)
        # ``@1`` is the default arrival and is normalised away on re-emission.
        canonical = "worker.task:kill@2;serve.decode:exceptionx2;store.publish:bitflip=dstar.npy;worker.task:delayx*=0.05"
        assert plan.to_spec() == canonical
        assert FaultPlan.parse(canonical).to_spec() == canonical
        assert [r.site for r in plan.rules] == ["worker.task", "serve.decode", "store.publish", "worker.task"]
        assert plan.rules[3].times == -1

    @pytest.mark.parametrize("bad", ["nosite", "site:doesnotexist", "site:kill@0", "site:killx0", ":kill"])
    def test_malformed_specs_fail_loudly(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_exception_fires_at_scheduled_arrivals_only(self):
        plan = FaultPlan.parse("s:exception@2x2")
        plan.trip("s")  # arrival 1: quiet
        for _ in range(2):  # arrivals 2 and 3 fire
            with pytest.raises(InjectedFault):
                plan.trip("s")
        plan.trip("s")  # arrival 4: rule exhausted
        assert (plan.arrivals("s"), plan.fired("s")) == (4, 2)

    def test_delay_composes_with_a_terminal_action(self):
        plan = FaultPlan.parse("s:delay=0.001;s:exception")
        with pytest.raises(InjectedFault):
            plan.trip("s")
        assert plan.fired("s") == 2  # both rules fired on the same arrival

    def test_bitflip_is_deterministic_per_seed(self, tmp_path):
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        payload = bytes(range(256)) * 4
        a.write_bytes(payload)
        b.write_bytes(payload)
        off_a = bitflip_file(a, seed=(7, "site", 1))
        off_b = bitflip_file(b, seed=(7, "site", 1))
        assert off_a == off_b and a.read_bytes() == b.read_bytes()
        assert sum(x != y for x, y in zip(a.read_bytes(), payload)) == 1  # exactly one byte
        assert off_a >= 128  # past the header region

    def test_truncate_halves_the_file(self, tmp_path):
        f = tmp_path / "t.bin"
        f.write_bytes(b"x" * 1000)
        assert truncate_file(f) == 500
        assert f.stat().st_size == 500

    def test_ambient_plan_resolves_from_env_once(self, fault_env):
        from repro.faults import trip

        fault_env("probe:exception@1")
        with pytest.raises(InjectedFault):
            trip("probe")
        trip("probe")  # exhausted; also proves the same plan object is reused

    def test_trip_is_a_noop_without_a_plan(self, monkeypatch):
        from repro.faults import trip

        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        reset_ambient_plan()
        trip("anything")  # must not raise
        reset_ambient_plan()


class TestWorkerCrashHealing:
    def test_sigkilled_workers_heal_and_results_are_bit_identical(self, fault_env):
        payloads = list(range(12))
        expected = [p * p for p in payloads]  # the fault-free answer
        fault_env("worker.task:kill@3")  # every worker dies at its 3rd task
        with WorkerPool(2) as pool:
            assert pool.map(_square, payloads, timeout=60.0) == expected
            assert pool.respawns >= 1
            assert len(pool.crashed_pids) == pool.respawns
            assert all(pid > 0 for pid in pool.crashed_pids)

    def test_retry_budget_exhaustion_raises_structured_crash_error(self, fault_env):
        fault_env("worker.task:kill@1x*")  # every task is lethal: healing cannot win
        with WorkerPool(2, max_task_retries=1) as pool:
            with pytest.raises(WorkerCrashError) as err:
                pool.map(_square, list(range(4)), timeout=60.0)
        assert err.value.retryable
        assert err.value.task_id is not None
        assert len(err.value.pids) >= 2  # the original death plus the failed retry

    def test_worker_memory_error_is_structured_and_retryable(self):
        with WorkerPool(2) as pool:
            with pytest.raises(RetryableTaskError) as err:
                pool.map(_raise_memory_error, [1, 2], timeout=60.0)
        assert err.value.retryable
        assert "MemoryError" in str(err.value)

    def test_serial_backend_translates_transient_errors(self):
        with pytest.raises(RetryableTaskError, match="MemoryError"):
            SerialBackend().map(_raise_memory_error, [1])

    def test_trial_grid_heals_under_worker_kills_bit_identically(self, fault_env):
        ms = [20, 24, 28, 32, 36, 40]
        plain = run_trial_grid(120, ms, theta=0.2, trials=3, root_seed=9, backend=SerialBackend())
        fault_env("worker.task:kill@2")
        with SharedMemBackend(2) as backend:
            healed = run_trial_grid(120, ms, theta=0.2, trials=3, root_seed=9, backend=backend)
            assert backend.pool.respawns >= 1  # the faults really fired
        for a, b in zip(plain, healed):
            assert np.array_equal(a.success, b.success)
            assert np.array_equal(a.overlap, b.overlap)


class TestStoreIntegrity:
    def _publish(self, root):
        store = DesignStore(root)
        store.publish(compile_from_key(KEY))
        return store

    @pytest.mark.parametrize("corrupt", [bitflip_file, truncate_file])
    def test_corrupt_artifact_quarantines_and_recompiles_bit_identically(self, tmp_path, corrupt):
        store = self._publish(tmp_path / "store")
        corrupt(store.entry_dir(KEY) / "dstar.npy")
        assert store.get(KEY) is None  # integrity manifest catches it: clean miss
        assert store.stats.quarantined == 1
        assert store.persistent_stats()["quarantined"] == 1
        held = list((store.root / ".quarantine").iterdir())
        assert len(held) == 1  # set aside for post-mortem, not deleted
        healed = store.get_or_compile(KEY, lambda: compile_from_key(KEY))
        fresh = compile_from_key(KEY)
        assert np.array_equal(np.asarray(healed.dstar), fresh.dstar)
        assert np.array_equal(np.asarray(healed.delta), fresh.delta)
        assert np.array_equal(np.asarray(healed.design.entries), fresh.design.entries)

    def test_publish_fault_site_corrupts_then_store_self_repairs(self, tmp_path, ambient_fault):
        ambient_fault(FaultPlan.parse("store.publish:bitflip=dstar.npy"))
        store = self._publish(tmp_path / "store")  # the publish trip corrupts the entry
        reset_ambient_plan()
        assert store.get(KEY) is None
        healed = store.get_or_compile(KEY, lambda: compile_from_key(KEY))
        assert np.array_equal(np.asarray(healed.dstar), compile_from_key(KEY).dstar)

    def test_pre_manifest_entry_is_a_miss_not_a_half_trust(self, tmp_path):
        store = self._publish(tmp_path / "store")
        meta_path = store.entry_dir(KEY) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 1  # a v1 entry: no integrity manifest
        del meta["sha256"]
        meta_path.write_text(json.dumps(meta, sort_keys=True))
        assert store.get(KEY) is None

    def test_fsck_audits_quarantines_and_reports_clean(self, tmp_path):
        store = DesignStore(tmp_path / "store")
        other = DesignKey.for_stream(160, 30, root_seed=22)
        store.publish(compile_from_key(KEY))
        store.publish(compile_from_key(other))
        bitflip_file(store.entry_dir(other) / "entries.npy")
        report = store.fsck()
        assert report.checked == 2
        assert len(report.ok) == 1 and len(report.quarantined) == 1
        assert report.quarantine_held == 1 and not report.clean
        # The bad entry is gone; a second audit over the survivor is clean.
        again = store.fsck()
        assert again.checked == 1 and again.clean is False  # quarantine still held
        store.reap_residue(grace_s=0.0)
        assert store.fsck().quarantine_held == 0

    def test_verification_runs_once_per_attach_not_per_decode(self, tmp_path):
        calls = []
        import repro.designs.store as store_mod

        original = store_mod._sha256_file

        def counting(path):
            calls.append(path.name)
            return original(path)

        store = self._publish(tmp_path / "store")
        store_mod._sha256_file = counting
        try:
            attached = store.get(KEY)
            decoder = MNDecoder().compile(attached)
            y, _ = make_case(KEY, 4, seed=5)
            hashed_after_attach = len(calls)
            for _ in range(3):
                decoder.decode(np.asarray(y, dtype=np.int64), 4)
            assert len(calls) == hashed_after_attach  # decodes never re-hash
            assert hashed_after_attach >= len(["entries", "indptr", "dstar", "delta"])
        finally:
            store_mod._sha256_file = original

    def test_publisher_crash_leaves_no_entry_and_second_process_heals(self, tmp_path):
        root = tmp_path / "store"
        child = (
            "import sys, json\n"
            "import numpy as np\n"
            "from repro.designs import DesignKey, DesignStore, compile_from_key\n"
            "key = DesignKey.for_stream(160, 30, root_seed=21)\n"
            "store = DesignStore(sys.argv[1])\n"
            "c = store.get_or_compile(key, lambda: compile_from_key(key))\n"
            "print(json.dumps({'dstar_sum': int(np.asarray(c.dstar).sum())}))\n"
        )
        base_env = {"PYTHONPATH": _SRC, "PATH": "/usr/bin:/bin"}
        crashed = subprocess.run(
            [sys.executable, "-c", child, str(root)],
            capture_output=True,
            text=True,
            env={**base_env, FAULT_PLAN_ENV: "store.publish.pre_rename:crash@1"},
        )
        assert crashed.returncode == 70  # died between tmp-write and rename
        store = DesignStore(root)
        assert KEY not in store  # atomicity: no partial entry is visible
        residue = [p for p in root.iterdir() if p.name.startswith(".tmp-")]
        assert len(residue) == 1  # the orphaned publication temp dir
        clean = subprocess.run(
            [sys.executable, "-c", child, str(root)],
            capture_output=True,
            text=True,
            env=base_env,
            check=True,
        )
        assert KEY in store  # the second process compiled and published cleanly
        assert json.loads(clean.stdout)["dstar_sum"] == int(compile_from_key(KEY).dstar.sum())
        # gc reaps the crash residue (grace elapsed) but keeps the good entry.
        store.gc(residue_grace_s=0.0)
        assert not [p for p in root.iterdir() if p.name.startswith(".tmp-")]
        assert KEY in store


class TestRemoteChaos:
    """The fleet tier under injected remote faults.

    The invariant mirrors the local store's: any remote fault — torn
    transfer, corrupt blob, crashed publisher, racing sync — reads as a
    *miss* (healed by recompile or a later sweep), never as a wrong or
    corrupt attach, and every recovered decode is bit-identical to a
    fault-free run.
    """

    def _fleet(self, tmp_path, name, **kwargs):
        from repro.designs import DesignStore, LocalDirRemote

        return DesignStore(tmp_path / name, remote=LocalDirRemote(tmp_path / "remote"), **kwargs)

    def test_truncated_fetch_is_a_clean_miss_then_heals(self, tmp_path, ambient_fault):
        a = self._fleet(tmp_path, "a")
        a.publish(compile_from_key(KEY))  # write-through seeds the remote
        b = self._fleet(tmp_path, "b")
        ambient_fault(FaultPlan.parse("remote.fetch:truncate@1"))
        assert b.get(KEY) is None  # torn transfer: quarantined, never attached
        reset_ambient_plan()
        assert b.stats.remote_corrupt == 1
        held = list((b.root / ".quarantine").glob("remote-*.tar"))
        assert len(held) == 1  # the torn blob is parked for post-mortem
        healed = b.get(KEY)  # the remote blob itself was never damaged
        assert healed is not None
        assert np.array_equal(np.asarray(healed.dstar), compile_from_key(KEY).dstar)

    def test_bitflipped_remote_blob_quarantines_then_refetches(self, tmp_path):
        a = self._fleet(tmp_path, "a")
        a.publish(compile_from_key(KEY))
        digest = a.digest(KEY)
        blob = tmp_path / "remote" / "blobs" / f"{digest}.tar"
        bitflip_file(blob)
        b = self._fleet(tmp_path, "b")
        assert b.get(KEY) is None  # manifest hash mismatch: set aside, clean miss
        assert b.stats.remote_corrupt == 1
        assert b.remote_publish(KEY) is False  # nothing local to repair with yet
        a.remote_publish(KEY)  # the healthy replica re-uploads the clean blob
        healed = b.get(KEY)
        assert healed is not None and b.stats.remote_hits == 1
        assert np.array_equal(np.asarray(healed.dstar), compile_from_key(KEY).dstar)

    def test_corrupting_publish_is_detected_by_every_fetcher(self, tmp_path, ambient_fault):
        # The bitflip lands on the staged blob *after* its hash is recorded,
        # so the remote holds corrupt bytes under a clean manifest record —
        # exactly what a mid-upload corruption looks like.
        ambient_fault(FaultPlan.parse("remote.publish:bitflip"))
        a = self._fleet(tmp_path, "a")
        a.publish(compile_from_key(KEY))
        reset_ambient_plan()
        b = self._fleet(tmp_path, "b")
        assert b.get(KEY) is None and b.stats.remote_corrupt == 1
        report = b.fsck(remote=True)  # the audit sees it too
        assert report.remote_bad == (a.digest(KEY),)

    def test_publisher_crash_between_blob_and_manifest_heals_via_anti_entropy(self, tmp_path):
        remote_root = tmp_path / "remote"
        child = (
            "import sys, json\n"
            "import numpy as np\n"
            "from repro.designs import DesignKey, DesignStore, compile_from_key\n"
            "key = DesignKey.for_stream(160, 30, root_seed=21)\n"
            "store = DesignStore(sys.argv[1], remote=sys.argv[2])\n"
            "c = store.get_or_compile(key, lambda: compile_from_key(key))\n"
            "print(json.dumps({'dstar_sum': int(np.asarray(c.dstar).sum())}))\n"
        )
        base_env = {"PYTHONPATH": _SRC, "PATH": "/usr/bin:/bin"}
        crashed = subprocess.run(
            [sys.executable, "-c", child, str(tmp_path / "a"), str(remote_root)],
            capture_output=True,
            text=True,
            env={**base_env, FAULT_PLAN_ENV: "remote.manifest:crash@1"},
        )
        assert crashed.returncode == 70  # died between blob upload and manifest write
        from repro.designs import DesignStore, LocalDirRemote

        remote = LocalDirRemote(remote_root)
        digest = DesignStore.digest(KEY)
        assert remote.list() == [digest]  # the blob landed...
        assert remote.get_manifest() is None  # ...the manifest never did
        b = DesignStore(tmp_path / "b", remote=remote)
        report = b.anti_entropy()  # the sweep finds it through the listing
        assert report.pulled == (digest,) and report.generation >= 1
        assert digest in json.loads(remote.get_manifest())["entries"]  # repaired
        healed = b.get(KEY)
        assert np.array_equal(np.asarray(healed.dstar), compile_from_key(KEY).dstar)

    def test_concurrent_syncs_converge_to_identical_entry_sets(self, tmp_path):
        from repro.designs import DesignKey, DesignStore, LocalDirRemote, compile_from_key

        remote_root = tmp_path / "remote"
        keys = [KEY, DesignKey.for_stream(160, 30, root_seed=22)]
        for name, key in zip(("a", "b"), keys):
            DesignStore(tmp_path / name).publish(compile_from_key(key))  # divergent, offline
        child = (
            "import sys\n"
            "from repro.designs import DesignStore\n"
            "report = DesignStore(sys.argv[1], remote=sys.argv[2]).anti_entropy()\n"
            "sys.exit(0 if not report.corrupt else 3)\n"
        )
        env = {"PYTHONPATH": _SRC, "PATH": "/usr/bin:/bin"}

        def sync_both():
            procs = [
                subprocess.Popen(
                    [sys.executable, "-c", child, str(tmp_path / name), str(remote_root)],
                    env=env,
                )
                for name in ("a", "b")
            ]
            assert [p.wait(timeout=120) for p in procs] == [0, 0]

        sync_both()  # racing first sweeps: each may miss the other's push
        sync_both()  # the second round must converge them
        remote = LocalDirRemote(remote_root)
        expected = {DesignStore.digest(k) for k in keys}
        ls_a = {e.digest for e in DesignStore(tmp_path / "a").ls()}
        ls_b = {e.digest for e in DesignStore(tmp_path / "b").ls()}
        assert ls_a == ls_b == expected == set(remote.list())
        for key in keys:  # converged *content*, not just names
            da = DesignStore(tmp_path / "a").get(key)
            db = DesignStore(tmp_path / "b").get(key)
            assert np.array_equal(np.asarray(da.dstar), np.asarray(db.dstar))
            assert np.array_equal(np.asarray(da.design.entries), np.asarray(db.design.entries))


class TestSharedMemoryIntegrity:
    def test_corrupt_disk_entry_cannot_reach_workers_via_a_stale_shm_descriptor(self, tmp_path):
        """The SHM path serves bytes verified at publish time, never raw disk.

        ``SharedCompiledDesign.publish`` copies the already-verified arrays
        into named segments, so corrupting the on-disk entry *after* the
        copy must not leak through a descriptor a worker attaches later —
        and any fresh store attach must quarantine the corrupt entry
        instead of serving it.
        """
        from repro.designs import DesignStore, SharedCompiledDesign, attach_compiled

        store = DesignStore(tmp_path / "store")
        store.publish(compile_from_key(KEY))
        attached = store.get(KEY)  # verified against the integrity manifest here
        with SharedCompiledDesign.publish(attached) as shared:
            bitflip_file(store.entry_dir(KEY) / "dstar.npy")  # corrupt *after* the copy
            worker_cache = {}  # the per-worker memo keeps the attachments mapped
            worker_view = attach_compiled(shared.descriptor, cache=worker_cache)
            fresh = compile_from_key(KEY)
            assert np.array_equal(np.asarray(worker_view.dstar), fresh.dstar)
            assert np.array_equal(np.asarray(worker_view.design.entries), fresh.design.entries)
            # A fresh attach of the now-corrupt disk entry is a clean miss;
            # quarantine is deferred while the verified reader still pins
            # the entry (its mmap view predates the corruption).
            fresh_store = DesignStore(tmp_path / "store")
            assert fresh_store.get(KEY) is None
            assert fresh_store.stats.quarantined == 0
        import gc

        del attached, shared, worker_view, worker_cache  # release the reader's pin
        gc.collect()
        unpinned = DesignStore(tmp_path / "store")
        assert unpinned.get(KEY) is None
        assert unpinned.stats.quarantined == 1  # now it is set aside for good


class TestCircuitBreaker:
    def test_half_open_probe_failure_reopens(self):
        t = [0.0]
        b = CircuitBreaker(threshold=1, cooldown_s=10.0, clock=lambda: t[0])
        b.record_failure()
        assert b.state == "open" and b.opens == 1
        t[0] = 11.0
        assert b.allow()  # the half-open probe
        b.record_failure()  # probe failed: straight back to open
        assert b.state == "open" and b.opens == 2
        assert not b.allow()  # cooling again from the reopen time
        t[0] = 22.0
        assert b.allow()
        b.record_success()
        assert b.state == "closed" and b.consecutive_failures == 0

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)


class TestServeDegradation:
    def test_failed_decode_retries_on_a_fresh_decoder(self, ambient_fault):
        async def run():
            plan = FaultPlan.parse("serve.decode:exception@1")
            ambient_fault(plan)
            pool = DecoderPool(MNDecoder())
            coalescer = Coalescer(pool, window_s=0.0, max_batch=1)  # decode_retries=1 default
            y, offline = make_case(KEY, 4, seed=40)
            support = await coalescer.submit(_request(KEY, y, 4, "r1"))
            assert support.tolist() == offline  # healed invisibly, bit-identical
            assert coalescer.stats.retries == 1
            assert pool.evictions == 1  # the suspect decoder was dropped
            assert plan.fired("serve.decode") == 1

        asyncio.run(run())

    def test_breaker_opens_fast_fails_then_recovers_through_half_open(self, ambient_fault):
        async def run():
            ambient_fault(FaultPlan.parse("serve.decode:exception@1x2"))
            coalescer = Coalescer(
                DecoderPool(MNDecoder()),
                window_s=0.0,
                max_batch=1,
                decode_retries=0,
                breaker_threshold=1,
                breaker_cooldown_s=0.05,
            )
            y, offline = make_case(KEY, 4, seed=41)

            async def roundtrip(request_id):
                return await coalescer.submit(_request(KEY, y, 4, request_id))

            with pytest.raises(ProtocolError) as err:
                await roundtrip("r1")  # first dispatch fails: breaker opens
            assert err.value.code == "internal"
            with pytest.raises(ProtocolError) as err:
                await roundtrip("r2")  # open and cooling: refused before any work
            assert err.value.code == "unavailable"
            await asyncio.sleep(0.06)
            with pytest.raises(ProtocolError) as err:
                await roundtrip("r3")  # half-open probe, second injected failure
            assert err.value.code == "internal"
            with pytest.raises(ProtocolError) as err:
                await roundtrip("r4")  # the failed probe re-opened the breaker
            assert err.value.code == "unavailable"
            await asyncio.sleep(0.06)
            support = await roundtrip("r5")  # probe succeeds: service restored
            assert support.tolist() == offline
            assert (await roundtrip("r6")).tolist() == offline  # fully closed again
            assert coalescer.stats.unavailable == 2
            assert coalescer.stats.breaker_opens == 2
            assert coalescer.breaker(KEY).state == "closed"

        asyncio.run(run())

    def test_server_end_to_end_degrades_then_recovers(self, ambient_fault):
        async def run():
            ambient_fault(FaultPlan.parse("serve.decode:exception@1x2"))
            config = ServeConfig(
                batch_window_ms=0.0, decode_retries=0, breaker_threshold=1, breaker_cooldown_ms=5.0
            )
            server = DecodeServer(MNDecoder(), config)
            host, port = await server.start_tcp()
            y, offline = make_case(KEY, 4, seed=42)
            async with await ServeClient.connect(host, port) as client:
                failures = []
                for i in range(20):
                    response = await client.decode(KEY, y, 4, request_id=f"r{i}")
                    if response["ok"]:
                        break
                    failures.append(response["error"]["code"])
                    await asyncio.sleep(0.01)
                else:
                    pytest.fail(f"service never recovered; errors: {failures}")
                assert response["support"] == offline  # recovered bit-identically
                assert failures and set(failures) <= {"internal", "unavailable"}
                assert "internal" in failures  # the injected failures were served
            await server.drain()

        asyncio.run(run())

    def test_client_reconnects_and_replays_unanswered_requests(self):
        async def run():
            connections = 0

            async def handler(reader, writer):
                nonlocal connections
                connections += 1
                if connections == 1:
                    await reader.readline()  # swallow the request, then drop the line
                    writer.close()
                    return
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    request = json.loads(line)
                    response = {"request_id": request["request_id"], "ok": True, "n": 4, "k": 1, "support": [2]}
                    writer.write((json.dumps(response) + "\n").encode())
                    await writer.drain()

            fake = await asyncio.start_server(handler, "127.0.0.1", 0)
            host, port = fake.sockets[0].getsockname()[:2]
            client = await ServeClient.connect(host, port, reconnect=True, backoff_base_s=0.01)
            response = await asyncio.wait_for(client.request({"probe": 1}, request_id="q1"), timeout=10.0)
            assert response == {"request_id": "q1", "ok": True, "n": 4, "k": 1, "support": [2]}
            assert connections == 2 and client.reconnects == 1
            await client.close()
            fake.close()
            await fake.wait_closed()

        asyncio.run(run())

    def test_reconnect_gives_up_after_bounded_attempts(self):
        async def run():
            async def handler(reader, writer):
                await reader.readline()
                writer.close()

            fake = await asyncio.start_server(handler, "127.0.0.1", 0)
            host, port = fake.sockets[0].getsockname()[:2]
            client = await ServeClient.connect(host, port, reconnect=True, max_reconnect_attempts=2, backoff_base_s=0.01)
            fake.close()  # no listener left: every re-dial must fail
            await fake.wait_closed()
            with pytest.raises(ConnectionError):
                await asyncio.wait_for(client.request({"probe": 1}, request_id="q1"), timeout=10.0)
            await client.close()

        asyncio.run(run())
