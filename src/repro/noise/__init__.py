"""Noisy-channel subsystem: models, keyed corruption streams, robust decoding.

The paper's oracle returns exact counts; §VI poses robustness to noisy
results as the natural extension.  This package makes the noisy channel a
first-class citizen of the batched engine:

* :mod:`repro.noise.models` — :class:`NoiseModel` (Gaussian, dropout) and
  the CLI spec parser (``"gaussian:2.0"``).
* :mod:`repro.noise.channel` — deterministic per-signal corruption streams
  keyed ``(noise_seed, NOISE_STREAM_TAG, signal, replica)``; batch rows are
  bit-identical to single-signal corruption, so every facade-level
  bit-identity guarantee of the engine survives the noisy channel.
* :mod:`repro.noise.robust` — repeat-query averaging, robust (median)
  k-calibration and the noise-aware score-threshold decoder.
* :mod:`repro.noise.trial` — the single-trial simulation harness with
  LP/OMP comparison hooks.

Entry points grow a ``noise=`` (and ``repeats=``) parameter rather than a
separate code path: :func:`repro.reconstruct`,
:func:`repro.reconstruct_batch`,
:func:`repro.core.design.stream_design_stats`,
:func:`repro.core.mn.run_mn_trial` and the batched grid runner all thread
the same model through, and ``noise=None`` stays bit-identical to the
exact-channel code they always ran.
"""

from repro.noise.channel import (
    NOISE_STREAM_TAG,
    average_replicas,
    corrupt_batch,
    corrupt_single,
    noise_stream,
)
from repro.noise.models import DropoutNoise, GaussianNoise, NoiseModel, parse_noise_spec
from repro.noise.robust import (
    ThresholdDecodeResult,
    robust_calibrate_k,
    score_noise_std,
    threshold_decode,
)
from repro.noise.trial import run_noisy_mn_trial

__all__ = [
    "NoiseModel",
    "GaussianNoise",
    "DropoutNoise",
    "parse_noise_spec",
    "NOISE_STREAM_TAG",
    "noise_stream",
    "corrupt_single",
    "corrupt_batch",
    "average_replicas",
    "robust_calibrate_k",
    "score_noise_std",
    "threshold_decode",
    "ThresholdDecodeResult",
    "run_noisy_mn_trial",
]
