"""Tests for the terminal plotting helpers."""

import pytest

from repro.util.asciiplot import ascii_series_plot, format_table


class TestAsciiPlot:
    def test_renders_markers(self):
        out = ascii_series_plot({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "o" in out and "x" in out
        assert "a" in out and "b" in out

    def test_log_axes_drop_nonpositive(self):
        out = ascii_series_plot({"a": [(0, 1), (10, 10), (100, 100)]}, logx=True, logy=True)
        assert isinstance(out, str)

    def test_all_filtered_raises(self):
        with pytest.raises(ValueError, match="no plottable"):
            ascii_series_plot({"a": [(-1, 1)]}, logx=True)

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            ascii_series_plot({})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_series_plot({"a": [(0, 0)]}, width=2, height=2)

    def test_title_included(self):
        out = ascii_series_plot({"a": [(0, 0), (1, 1)]}, title="Fig test")
        assert "Fig test" in out

    def test_constant_series(self):
        out = ascii_series_plot({"a": [(0, 5), (1, 5)]})
        assert "o" in out


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["col", "x"], [["long-value", 1], ["s", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("col")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out
