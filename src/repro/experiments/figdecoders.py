"""Decoder comparison phase diagram — exact recovery over a (θ, decoder) grid.

The paper positions the MN algorithm against compressed sensing (LP basis
pursuit), greedy pursuit (OMP), message passing (AMP) and binary group
testing (COMP/DD) — §I-B and §I-D.  This driver maps that comparison
empirically: for each sparsity exponent θ it fixes one query budget ``m``
just above Theorem 1's threshold and decodes the *same* designs, signals
and query results with every registry decoder, measuring the
exact-recovery rate per cell — the empirical phase boundary of each
decoder family at MN's operating point.

Statistical contract: every cell of one θ-row runs through
:func:`~repro.engine.grid.run_batched_point` at ``point_id = 0`` with the
per-θ root seed ``root_seed + 104729·ti`` — the fignoise/fig3 stream
convention.  The design and signal draws depend only on those keys, never
on the decoder, so a θ-row is a paired (common-random-numbers) comparison
and the ``mn`` column is bit-identical to the noiseless batched Fig. 3
point at the matching (θ, m).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.signal import theta_to_k
from repro.core.thresholds import m_mn_threshold
from repro.experiments.fignoise import DEFAULT_M_FACTOR, THETA_SEED_STRIDE
from repro.experiments.io import write_csv
from repro.util.asciiplot import ascii_series_plot
from repro.util.stats import SummaryStats, summarize_bool, summarize_float
from repro.util.validation import check_positive_int

__all__ = ["run_figdecoders", "FigdecodersSeries", "FigdecodersPoint", "DEFAULT_DECODER_GRID"]

#: Decoder columns of the default comparison grid (registry names).  LP is
#: included — its per-signal ``linprog`` makes it the slowest column, which
#: is itself part of the comparison story.
DEFAULT_DECODER_GRID = ("mn", "lp", "omp", "amp", "comp", "dd")


def _figdecoders_cell_task(payload, cache):
    """Module-level worker task (picklable): one (θ, decoder) cell.

    Cells — not rows — are the fan-out unit because decoder costs differ
    by orders of magnitude (LP's per-signal LP vs MN's one GEMM); pairing
    is preserved anyway since the design/signal streams are keyed by
    (seed, point) only.
    """
    n, m_theta, theta, trials, seed_theta, blocks, decoder = payload
    from repro.engine.grid import run_batched_point

    return run_batched_point(
        n,
        m_theta,
        theta=theta,
        trials=trials,
        root_seed=seed_theta,
        point_id=0,
        blocks=blocks,
        decoder=decoder,
    )


@dataclass(frozen=True)
class FigdecodersPoint:
    """One cell of the phase diagram (one θ, one decoder)."""

    decoder: str
    theta: float
    n: int
    m: int
    k: int
    success: SummaryStats
    overlap: SummaryStats

    def as_row(self) -> "tuple[str, float, int, int, int, float, float, float, float, float, float, int]":
        """CSV row: decoder, theta, n, m, k, success (mean, lo, hi), overlap (mean, lo, hi), trials."""
        return (
            self.decoder,
            self.theta,
            self.n,
            self.m,
            self.k,
            self.success.mean,
            self.success.lo,
            self.success.hi,
            self.overlap.mean,
            self.overlap.lo,
            self.overlap.hi,
            self.success.n,
        )


@dataclass(frozen=True)
class FigdecodersSeries:
    """One decoder-column of the phase diagram: recovery rate vs θ."""

    n: int
    decoder: str
    points: "tuple[FigdecodersPoint, ...]"

    def critical_theta(self, floor: float = 0.5) -> "float | None":
        """First grid θ whose success rate drops below ``floor`` (None if never)."""
        for p in self.points:
            if p.success.mean < floor:
                return float(p.theta)
        return None


def run_figdecoders(
    n: int = 1000,
    decoders: Sequence[str] = DEFAULT_DECODER_GRID,
    thetas: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
    m: Optional[int] = None,
    trials: int = 20,
    root_seed: int = 0,
    workers: int = 1,
    csv_name: "str | None" = None,
    plot: bool = False,
) -> "list[FigdecodersSeries]":
    """Generate the decoder-comparison phase diagram.

    Parameters
    ----------
    n:
        Signal length.
    decoders:
        Registry decoder names (diagram columns; validated up front).
    thetas:
        Sparsity exponents (diagram rows).
    m:
        Shared query budget; default per-θ
        ``ceil(1.25 · m_mn_threshold(n, θ))`` — MN's operating point, so
        the diagram reads as "who else survives where MN does".
    trials, root_seed, workers:
        Trials per cell, root entropy, and cell fan-out.  Results never
        depend on the worker count.
    csv_name:
        When given, write the full grid to ``<results>/<csv_name>.csv``.
    plot:
        Render an ASCII recovery-vs-θ plot per decoder.
    """
    from repro.designs import available_decoders

    trials = check_positive_int(trials, "trials")
    decoders = tuple(str(d) for d in decoders)
    if not decoders:
        raise ValueError("decoders must name at least one registry decoder")
    unknown = [d for d in decoders if d not in available_decoders()]
    if unknown:
        raise ValueError(f"unknown decoder(s) {unknown}; available: {', '.join(available_decoders())}")

    rows_spec = []
    for ti, theta in enumerate(thetas):
        seed_theta = root_seed + THETA_SEED_STRIDE * ti
        m_theta = int(m) if m is not None else int(np.ceil(DEFAULT_M_FACTOR * m_mn_threshold(n, float(theta))))
        rows_spec.append((float(theta), seed_theta, m_theta, theta_to_k(n, float(theta))))

    from repro.engine.backend import resolved_backend

    with resolved_backend(workers=workers) as exec_backend:
        payloads = [
            (n, m_theta, theta, trials, seed_theta, exec_backend.blocks, decoder)
            for theta, seed_theta, m_theta, _ in rows_spec
            for decoder in decoders
        ]
        if exec_backend.workers == 1:
            results = [_figdecoders_cell_task(p, {}) for p in payloads]
        else:
            results = exec_backend.map(_figdecoders_cell_task, payloads)

    cells: "dict[tuple[str, float], FigdecodersPoint]" = {}
    flat = iter(results)
    for theta, _, m_theta, k in rows_spec:
        for decoder in decoders:
            r = next(flat)
            cells[(decoder, theta)] = FigdecodersPoint(
                decoder=decoder,
                theta=theta,
                n=n,
                m=m_theta,
                k=k,
                success=summarize_bool([bool(s) for s in r.success]),
                overlap=summarize_float([float(o) for o in r.overlap]),
            )

    series = [
        FigdecodersSeries(
            n=n,
            decoder=decoder,
            points=tuple(cells[(decoder, theta)] for theta, _, _, _ in rows_spec),
        )
        for decoder in decoders
    ]

    if csv_name:
        write_csv(
            csv_name,
            [
                "decoder",
                "theta",
                "n",
                "m",
                "k",
                "success",
                "success_lo",
                "success_hi",
                "overlap",
                "overlap_lo",
                "overlap_hi",
                "trials",
            ],
            [p.as_row() for s in series for p in s.points],
        )
    if plot:
        chart = {s.decoder: [(p.theta, p.success.mean) for p in s.points] for s in series}
        print(
            ascii_series_plot(
                chart,
                title=f"Decoder phase diagram: exact recovery vs theta (n={n}, m=1.25x MN threshold)",
                xlabel="theta",
                ylabel="recovery",
            )
        )
    return series
