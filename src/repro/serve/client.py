"""The bundled serve client: pipelined NDJSON over a socket or pipe pair.

:class:`ServeClient` is what the tests, the CI smoke step and the load
benchmark drive the server with — and a reference for writing one in any
language: write request lines, read response lines, correlate by
``request_id``.  One connection pipelines any number of concurrent
requests; a background reader task demultiplexes responses to the
awaiting callers, so ``N`` coroutines sharing one client see exactly the
coalescing behavior ``N`` separate processes would.

With ``reconnect=True`` the client also survives a dropped connection:
the reader re-dials with capped exponential backoff (base 50 ms, cap
2 s) and **replays every unanswered request line** on the new
connection.  Replay is safe by construction — decodes are pure functions
of ``(design_key, y, k)`` and responses correlate by ``request_id``, so
a request answered twice resolves once and the duplicate is dropped.
Callers block through the outage instead of seeing ``ConnectionError``.

Examples (against a server on ``host:port``)::

    client = await ServeClient.connect(host, port)
    response = await client.decode(key, y, k)       # {"ok": True, "support": [...]}
    await client.close()
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import TYPE_CHECKING

import numpy as np

from repro.serve.protocol import MAX_LINE_BYTES, parse_response

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.designs.compiled import DesignKey

__all__ = ["ServeClient"]


class ServeClient:
    """A pipelined client for the serve wire protocol."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        address: "tuple[str, int] | None" = None,
        reconnect: bool = False,
        max_reconnect_attempts: int = 8,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
    ):
        self._reader = reader
        self._writer = writer
        self._pending: "dict[str | int, asyncio.Future]" = {}
        #: unanswered request lines by id — the replay set after a reconnect
        self._sent: "dict[str | int, str]" = {}
        self._address = address
        self._reconnect_enabled = bool(reconnect) and address is not None
        self._max_reconnect_attempts = int(max_reconnect_attempts)
        self._backoff_base_s = float(backoff_base_s)
        self._backoff_cap_s = float(backoff_cap_s)
        self.reconnects = 0  #: successful re-dials over this client's lifetime
        self._ids = itertools.count()
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        reconnect: bool = False,
        max_reconnect_attempts: int = 8,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
    ) -> "ServeClient":
        """Open a TCP connection to a running serve process.

        ``reconnect=True`` makes the client self-healing: a dropped
        connection is re-dialed with capped exponential backoff and every
        unanswered request is replayed on the new connection (safe —
        decodes are idempotent and responses correlate by request id).
        """
        reader, writer = await asyncio.open_connection(host, port, limit=MAX_LINE_BYTES + 1024)
        return cls(
            reader,
            writer,
            address=(host, port),
            reconnect=reconnect,
            max_reconnect_attempts=max_reconnect_attempts,
            backoff_base_s=backoff_base_s,
            backoff_cap_s=backoff_cap_s,
        )

    # -- the request surface ----------------------------------------------------

    async def decode(
        self,
        key: "DesignKey",
        y: "np.ndarray | list[int]",
        k: int,
        *,
        decoder: "str | None" = None,
        request_id: "str | int | None" = None,
    ) -> dict:
        """Submit one decode request; returns the parsed response dict.

        Success responses have ``ok: True`` and a sorted ``support`` list;
        failures have ``ok: False`` and a structured ``error`` — the
        client never raises on a *served* error, only on transport loss.
        ``decoder`` names a registry decoder; when ``None`` the field is
        omitted and the server's configured default applies.
        """
        payload = {
            "design_key": json.loads(key.to_json()),
            "y": [int(v) for v in np.asarray(y).tolist()],
            "k": int(k),
        }
        if decoder is not None:
            payload["decoder"] = decoder
        return await self.request(payload, request_id=request_id)

    async def request(self, payload: dict, *, request_id: "str | int | None" = None) -> dict:
        """Send a raw request object (``request_id`` filled in when absent).

        The low-level door: tests use it to submit deliberately malformed
        payloads and still correlate the structured error that comes back.
        """
        if request_id is None:
            request_id = f"c{next(self._ids)}"
        payload = {"request_id": request_id, **payload}
        future = self._register(request_id)
        line = json.dumps(payload, separators=(",", ":"))
        if self._reconnect_enabled:
            self._sent[request_id] = line
        try:
            await self._send_line(line)
        except OSError:
            # The write raced a connection drop; with reconnect enabled the
            # reader re-dials and replays this line, so the caller just
            # keeps awaiting.  Without it, fail fast like before.
            if not self._reconnect_enabled or self._closed:
                self._pending.pop(request_id, None)
                self._sent.pop(request_id, None)
                raise
        return await future

    async def send_raw(self, line: str) -> None:
        """Write one raw line verbatim (malformed-input tests)."""
        await self._send_line(line)

    async def next_unmatched(self, timeout: "float | None" = 5.0) -> dict:
        """The next response whose id no pending request claims.

        Responses to :meth:`send_raw` lines (including ``request_id:
        null`` errors for unparseable input) land here.
        """
        future = self._register(_UNMATCHED)
        return await asyncio.wait_for(future, timeout)

    # -- plumbing ---------------------------------------------------------------

    def _register(self, request_id) -> "asyncio.Future[dict]":
        if request_id in self._pending:
            raise ValueError(f"request_id {request_id!r} already in flight")
        future: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        return future

    async def _send_line(self, line: str) -> None:
        if self._closed:
            raise ConnectionError("client is closed")
        async with self._write_lock:
            self._writer.write(line.encode("utf-8") + b"\n")
            await self._writer.drain()

    async def _read_loop(self) -> None:
        try:
            while True:
                try:
                    line = await self._reader.readline()
                except ConnectionError:
                    line = b""  # a reset mid-read is the same as EOF here
                if not line:
                    if self._closed or not await self._reconnect():
                        break
                    continue
                line = line.strip()
                if not line:
                    continue
                try:
                    response = parse_response(line)
                except ValueError:
                    continue  # tolerate junk on the stream; requests will time out
                self._sent.pop(response["request_id"], None)
                future = self._pending.pop(response["request_id"], None)
                if future is None:
                    future = self._pending.pop(_UNMATCHED, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            pass
        finally:
            error = ConnectionError("server closed the connection")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()
            self._sent.clear()

    async def _reconnect(self) -> bool:
        """Re-dial after a drop and replay unanswered requests.

        Capped exponential backoff between attempts; gives up (failing
        every pending future) after ``max_reconnect_attempts``.  Returns
        whether a new connection is live.
        """
        if not self._reconnect_enabled:
            return False
        host, port = self._address  # type: ignore[misc]  # enabled implies address
        delay = self._backoff_base_s
        for _attempt in range(self._max_reconnect_attempts):
            await asyncio.sleep(delay)
            delay = min(delay * 2.0, self._backoff_cap_s)
            if self._closed:
                return False
            try:
                reader, writer = await asyncio.open_connection(host, port, limit=MAX_LINE_BYTES + 1024)
            except OSError:
                continue
            old = self._writer
            self._reader, self._writer = reader, writer
            try:
                old.close()
            except (OSError, RuntimeError):  # pragma: no cover - transport already gone
                pass
            self.reconnects += 1
            # Replay every unanswered line on the fresh connection.  A
            # request the old server answered into the void is simply
            # decoded again — bit-identical by the protocol contract.
            for request_id, line in list(self._sent.items()):
                if request_id not in self._pending:
                    self._sent.pop(request_id, None)
                    continue
                try:
                    await self._send_line(line)
                except OSError:
                    break  # this connection died too; the read loop re-dials
            return True
        return False

    async def close(self) -> None:
        """Close the connection; in-flight requests fail with ConnectionError."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        await asyncio.gather(self._reader_task, return_exceptions=True)
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()


#: Sentinel key for :meth:`ServeClient.next_unmatched` registrations.
_UNMATCHED = object()
