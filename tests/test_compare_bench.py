"""Tests for the CI benchmark-regression gate (benchmarks/compare_bench.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench", Path(__file__).resolve().parent.parent / "benchmarks" / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _write_bench(directory: Path, name: str, medians: "dict[str, float]") -> None:
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "bench": name,
        "results": [{"test": test, "median_s": median, "rounds": 1} for test, median in medians.items()],
    }
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "baseline", tmp_path / "fresh"


class TestLoadMedians:
    def test_loads_keys(self, dirs):
        base, _ = dirs
        _write_bench(base, "kernels", {"test_a": 0.5, "test_b": 0.1})
        assert compare_bench.load_medians(base) == {"kernels::test_a": 0.5, "kernels::test_b": 0.1}

    def test_missing_dir_is_empty(self, tmp_path):
        assert compare_bench.load_medians(tmp_path / "nope") == {}

    def test_malformed_file_skipped(self, dirs, capsys):
        base, _ = dirs
        base.mkdir()
        (base / "BENCH_bad.json").write_text("{not json")
        _write_bench(base, "good", {"t": 1.0})
        assert compare_bench.load_medians(base) == {"good::t": 1.0}
        assert "skipping malformed" in capsys.readouterr().err

    def test_malformed_record_drops_only_itself(self, dirs, capsys):
        """New record shapes (e.g. speedup-only records) must not sink their file."""
        base, _ = dirs
        base.mkdir()
        payload = {
            "bench": "kernels",
            "results": [
                {"test": "test_good", "median_s": 0.5},
                {"test": "test_speedup_only", "extra": {"speedup_x": 4.2}},  # no median_s
                {"test": "test_bad_median", "median_s": "n/a"},
            ],
        }
        (base / "BENCH_kernels.json").write_text(json.dumps(payload))
        assert compare_bench.load_medians(base) == {"kernels::test_good": 0.5}
        assert "skipping malformed record" in capsys.readouterr().err

    def test_extra_fields_tolerated(self, dirs):
        """Records carrying extra keys (params, speedup_x, context) load fine."""
        base, _ = dirs
        base.mkdir()
        payload = {
            "bench": "kernels",
            "results": [
                {"test": "t", "median_s": 0.25, "extra": {"speedup_x": 3.9, "n": 10000}, "context": {"python": "3"}}
            ],
        }
        (base / "BENCH_kernels.json").write_text(json.dumps(payload))
        assert compare_bench.load_medians(base) == {"kernels::t": 0.25}


class TestCompare:
    def test_flags_slowdown_beyond_threshold(self):
        rows, regressions = compare_bench.compare({"k::t": 0.1}, {"k::t": 0.35}, threshold=2.5)
        assert regressions == ["k::t"]
        assert rows[0][4] == "REGRESSION"

    def test_within_threshold_ok(self):
        _, regressions = compare_bench.compare({"k::t": 0.1}, {"k::t": 0.24}, threshold=2.5)
        assert regressions == []

    def test_disjoint_keys_never_fail(self):
        rows, regressions = compare_bench.compare({"a::x": 1.0}, {"b::y": 100.0})
        assert rows == [] and regressions == []

    def test_zero_baseline_cannot_regress(self):
        _, regressions = compare_bench.compare({"k::t": 0.0}, {"k::t": 5.0})
        assert regressions == []

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_bench.compare({}, {}, threshold=0.0)


class TestMain:
    def test_synthetic_3x_slowdown_fails(self, dirs, capsys):
        """The acceptance fixture: a 3x slowdown must exit non-zero."""
        base, fresh = dirs
        _write_bench(base, "kernels", {"test_psi": 0.10, "test_topk": 0.20})
        _write_bench(fresh, "kernels", {"test_psi": 0.30, "test_topk": 0.21})
        rc = compare_bench.main([str(base), str(fresh), "--threshold", "2.5"])
        assert rc == 1
        out = capsys.readouterr()
        assert "REGRESSION" in out.out  # per-key table printed
        assert "kernels::test_psi" in out.err

    def test_identical_measurements_pass(self, dirs):
        base, fresh = dirs
        _write_bench(base, "kernels", {"test_psi": 0.10})
        _write_bench(fresh, "kernels", {"test_psi": 0.10})
        assert compare_bench.main([str(base), str(fresh)]) == 0

    def test_empty_baseline_passes(self, dirs, capsys):
        base, fresh = dirs
        fresh.mkdir()
        _write_bench(fresh, "kernels", {"test_psi": 0.10})
        assert compare_bench.main([str(base), str(fresh)]) == 0
        assert "new record(s) without history" in capsys.readouterr().out

    def test_baseline_only_keys_reported_not_failed(self, dirs, capsys):
        base, fresh = dirs
        _write_bench(base, "kernels", {"test_gone": 0.10})
        _write_bench(fresh, "kernels", {"test_new": 0.10})
        assert compare_bench.main([str(base), str(fresh)]) == 0
        out = capsys.readouterr().out
        assert "baseline-only" in out

    def test_custom_threshold_respected(self, dirs):
        base, fresh = dirs
        _write_bench(base, "kernels", {"t": 0.10})
        _write_bench(fresh, "kernels", {"t": 0.15})
        assert compare_bench.main([str(base), str(fresh), "--threshold", "1.2"]) == 1
