"""Kernel parity across generations: the dispatch seam and bit-identity.

The kernel layer (:mod:`repro.kernels`) is a pure performance knob; every
test here asserts *exact* equality of the integer outputs — the library's
central reproducibility invariant extended to kernel choice.  Coverage
follows the seam end to end: streaming statistics (with and without noise,
serial and multi-worker), materialised designs (regular and ragged),
batched query evaluation, odd shapes (``B = 1``, last short batch,
``Γ = 1``), the precision-tier boundaries (float32's 2²⁴ and float64's
2⁵³ exact-integer limits, below and above), the BLAS threadpool governor,
the autotuner, and the top-k fast path.
"""

import numpy as np
import pytest

from repro import kernels
from repro.core.design import PoolingDesign, stream_design_stats
from repro.core.signal import random_signal
from repro.engine.backend import SerialBackend, SharedMemBackend, resolve_backend
from repro.engine.batch import reconstruct_batch, signals_oracle
from repro.kernels import threads, tune
from repro.noise.models import DropoutNoise, GaussianNoise
from repro.parallel.sort import parallel_top_k

STATS_FIELDS = ("y", "psi", "dstar", "delta")
ALL_KERNELS = ("dense", "dense32", "legacy")


def assert_stats_equal(a, b, context=""):
    for field in STATS_FIELDS:
        left, right = getattr(a, field), getattr(b, field)
        assert left.dtype == right.dtype, f"{field} dtype mismatch {context}"
        assert np.array_equal(left, right), f"{field} differs {context}"


class TestDispatch:
    def test_names(self):
        assert kernels.available_kernels() == ALL_KERNELS
        for name in kernels.available_kernels():
            assert kernels.dispatch(name).NAME == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernels.dispatch("blas")
        with pytest.raises(ValueError, match="unknown kernel"):
            kernels.check_kernel("sparse")

    def test_default_is_dense(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        assert kernels.resolve_kernel(None) == kernels.DEFAULT_KERNEL == "dense"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "legacy")
        assert kernels.resolve_kernel(None) == "legacy"
        # An explicit argument beats the environment.
        assert kernels.resolve_kernel("dense") == "dense"

    def test_env_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "fast")
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            kernels.resolve_kernel(None)

    def test_backend_carries_kernel(self):
        assert SerialBackend().kernel is None
        assert SerialBackend(kernel="legacy").kernel == "legacy"
        assert SharedMemBackend(2, kernel="dense").kernel == "dense"
        with pytest.raises(ValueError, match="unknown kernel"):
            SerialBackend(kernel="turbo")
        backend, owned = resolve_backend(workers=1, kernel="legacy")
        assert owned and backend.kernel == "legacy"


class TestStreamParity:
    """stream_design_stats: dense ↔ legacy bit-identity on the same keys."""

    @pytest.mark.parametrize(
        "n, m, gamma, batch_queries",
        [
            (101, 37, None, 8),  # several batches, last one short
            (64, 1, None, 256),  # single query => b=1 block
            (40, 17, 1, 4),  # Γ=1 degenerate pools
            (30, 9, 45, 9),  # Γ > n: heavy multi-edges
            (200, 300, None, 256),  # m > batch_queries with short tail
        ],
    )
    def test_noiseless(self, n, m, gamma, batch_queries):
        sigma = random_signal(n, max(1, n // 8), np.random.default_rng(0))
        legacy = stream_design_stats(sigma, m, root_seed=7, gamma=gamma, batch_queries=batch_queries, kernel="legacy")
        for kernel in ("dense", "dense32"):
            got = stream_design_stats(sigma, m, root_seed=7, gamma=gamma, batch_queries=batch_queries, kernel=kernel)
            assert_stats_equal(got, legacy, f"(kernel={kernel}, n={n}, m={m}, gamma={gamma}, bq={batch_queries})")

    @pytest.mark.parametrize("noise", [GaussianNoise(1.5), DropoutNoise(0.2)])
    def test_noisy(self, noise):
        sigma = random_signal(90, 11, np.random.default_rng(1))
        legacy = stream_design_stats(sigma, 41, root_seed=3, batch_queries=8, noise=noise, kernel="legacy")
        for kernel in ("dense", "dense32"):
            got = stream_design_stats(sigma, 41, root_seed=3, batch_queries=8, noise=noise, kernel=kernel)
            assert_stats_equal(got, legacy, f"(kernel={kernel}, {noise!r})")

    @pytest.mark.parametrize("kernel", list(ALL_KERNELS))
    @pytest.mark.parametrize("noise", [None, GaussianNoise(1.0)])
    def test_worker_count_invariance(self, kernel, noise):
        """workers ∈ {1, 2} never changes output, whatever the kernel."""
        sigma = random_signal(80, 9, np.random.default_rng(2))
        serial = stream_design_stats(sigma, 33, root_seed=5, batch_queries=8, noise=noise, kernel=kernel)
        with SharedMemBackend(2, kernel=kernel) as backend:
            forked = stream_design_stats(sigma, 33, root_seed=5, batch_queries=8, noise=noise, backend=backend)
        assert_stats_equal(serial, forked, f"(kernel={kernel}, noise={noise!r})")

    def test_backend_kernel_field_is_honoured(self):
        """An explicit kernel= argument beats the backend's field."""
        sigma = random_signal(60, 7, np.random.default_rng(3))
        via_backend = stream_design_stats(sigma, 21, root_seed=1, backend=SerialBackend(kernel="legacy"))
        explicit = stream_design_stats(sigma, 21, root_seed=1, backend=SerialBackend(kernel="legacy"), kernel="dense")
        assert_stats_equal(via_backend, explicit)

    def test_reuses_workspace_across_batches(self):
        """The dense stream loop reuses one scratch block per loop."""
        from repro.kernels import dense

        ws = dense.make_stream_workspace()
        block_a = ws.block(4, 50)
        assert block_a.base is ws.block(4, 50).base  # same backing buffer
        assert ws.block(2, 50).base is block_a.base  # smaller slice, same buffer
        assert not ws.block(4, 50).any()  # and it stays all-zero


class TestMaterialisedParity:
    """PoolingDesign.stats / psi / dstar / query_results across kernels."""

    @pytest.fixture
    def regular(self):
        rng = np.random.default_rng(4)
        return PoolingDesign.sample(101, 37, rng)

    @pytest.fixture
    def ragged(self):
        # Duplicate draws, an empty pool, Γ=1 pools, and a full pool.
        pools = [[0, 1, 2, 2, 5], [3], [], [6, 6, 6], [0, 5, 1], list(range(7))]
        return PoolingDesign.from_pools(7, pools)

    @pytest.mark.parametrize("kernel", ["dense", "dense32"])
    @pytest.mark.parametrize("B", [1, 5])
    def test_regular_stats(self, regular, B, kernel):
        sigmas = np.stack([random_signal(101, 9, np.random.default_rng(i)) for i in range(B)])
        fresh = PoolingDesign(regular.n, regular.entries, regular.indptr)  # isolate caches
        got = regular.stats(sigmas, kernel=kernel)
        legacy = fresh.stats(sigmas, kernel="legacy")
        assert_stats_equal(got, legacy, f"(kernel={kernel}, B={B})")

    @pytest.mark.parametrize("kernel", ["dense", "dense32"])
    def test_single_signal_stats(self, regular, kernel):
        sigma = random_signal(101, 9, np.random.default_rng(0))
        fresh = PoolingDesign(regular.n, regular.entries, regular.indptr)
        assert_stats_equal(regular.stats(sigma, kernel=kernel), fresh.stats(sigma, kernel="legacy"))

    @pytest.mark.parametrize("kernel", ["dense", "dense32"])
    def test_ragged_from_pools(self, ragged, kernel):
        fresh = PoolingDesign(ragged.n, ragged.entries, ragged.indptr)
        y = np.array([3, 1, 0, 2, 4, 7], dtype=np.int64)
        assert np.array_equal(ragged.psi(y, kernel=kernel), fresh.psi(y, kernel="legacy"))
        assert np.array_equal(ragged.dstar(kernel=kernel), fresh.dstar(kernel="legacy"))
        yB = np.stack([y, 2 * y, np.zeros(6, dtype=np.int64)])
        assert np.array_equal(ragged.psi(yB, kernel=kernel), fresh.psi(yB, kernel="legacy"))
        sigmas = np.stack([np.array([1, 0, 1, 0, 0, 1, 1], dtype=np.int8)] * 3)
        assert np.array_equal(
            ragged.query_results(sigmas, kernel=kernel), fresh.query_results(sigmas, kernel="legacy")
        )

    def test_batched_query_results_match_single(self, regular):
        sigmas = np.stack([random_signal(101, 9, np.random.default_rng(i)) for i in range(4)])
        batched = regular.query_results(sigmas, kernel="dense")
        for b in range(4):
            assert np.array_equal(batched[b], regular.query_results(sigmas[b]))

    def test_fig1_example_both_kernels(self):
        design, sigma = PoolingDesign.fig1_example()
        expected = np.array([2, 2, 3, 1, 1])
        for kernel in kernels.available_kernels():
            fresh, _ = PoolingDesign.fig1_example()
            y = fresh.query_results(np.stack([sigma]), kernel=kernel)
            assert np.array_equal(y, expected[None, :])
        assert np.array_equal(design.query_results(sigma), expected)

    def test_psi_exact_beyond_float53(self, ragged):
        """Integer accumulation: Ψ must be exact where float64 would round."""
        big = 2**53 + 1  # not representable in float64
        y = np.full(ragged.m, big, dtype=np.int64)
        for kernel in kernels.available_kernels():
            fresh = PoolingDesign(ragged.n, ragged.entries, ragged.indptr)
            psi = fresh.psi(y, kernel=kernel)
            # Entry 4 sits in exactly one query, so Ψ_4 = y of that query.
            assert psi[4] == big, f"kernel={kernel} rounded Ψ through float64"

    def test_dstar_cache_is_shared_and_consistent(self, regular):
        d1 = regular.dstar(kernel="dense")
        assert regular.dstar(kernel="legacy") is d1  # cached, kernel-agnostic
        fresh = PoolingDesign(regular.n, regular.entries, regular.indptr)
        assert np.array_equal(fresh.dstar(kernel="legacy"), d1)


class TestEndToEndParity:
    def test_reconstruct_batch_kernels_identical(self):
        n, m, B = 120, 70, 6
        sigmas = np.stack([random_signal(n, 5, np.random.default_rng(i)) for i in range(B)])
        reports = {}
        for kernel in kernels.available_kernels():
            reports[kernel] = reconstruct_batch(
                n,
                m,
                signals_oracle(sigmas),
                B,
                rng=np.random.default_rng(9),
                backend=SerialBackend(kernel=kernel),
            )
        for kernel in ("dense32", "legacy"):
            assert np.array_equal(reports["dense"].sigma_hat, reports[kernel].sigma_hat), kernel
            assert np.array_equal(reports["dense"].y, reports[kernel].y), kernel
            assert np.array_equal(reports["dense"].k, reports[kernel].k), kernel

    def test_batched_grid_point_kernels_identical(self):
        from repro.engine.grid import run_batched_point

        a = run_batched_point(90, 60, theta=0.35, trials=5, root_seed=11, kernel="dense")
        for kernel in ("dense32", "legacy"):
            b = run_batched_point(90, 60, theta=0.35, trials=5, root_seed=11, kernel=kernel)
            assert np.array_equal(a.success, b.success), kernel
            assert np.array_equal(a.overlap, b.overlap), kernel


class _ShiftNoise:
    """Deterministic test-only channel: shift every count by a constant.

    Lets a test place ``y`` exactly on a precision-tier boundary, which no
    stochastic library channel can do.
    """

    def __init__(self, shift: int):
        self.shift = int(shift)

    def corrupt(self, y, rng):
        return y + np.int64(self.shift)


class TestExactnessBoundaries:
    """The float32 (2²³) and float64 (2⁵²) guards at their boundaries.

    Each case drives ``y`` just below / just above a budget and asserts
    (a) the expected tier actually ran and (b) the outputs stay
    bit-identical across all kernels either way.
    """

    N = 6
    EDGES = np.array([[0, 1], [2, 3], [4, 5]], dtype=np.int64)  # each entry in exactly one query

    def _stream_all_kernels(self, shift):
        sigma = np.ones(self.N, dtype=np.int8)
        out = {}
        for name in ALL_KERNELS:
            mod = kernels.dispatch(name)
            psi = np.zeros(self.N, dtype=np.int64)
            dstar = np.zeros(self.N, dtype=np.int64)
            delta = np.zeros(self.N, dtype=np.int64)
            y = mod.stream_batch(
                self.EDGES, sigma, self.N, _ShiftNoise(shift), None, psi, dstar, delta, mod.make_stream_workspace()
            )
            out[name] = (y, psi, dstar, delta)
        return out

    @pytest.mark.parametrize(
        "shift",
        [
            2**21,  # Σ|y| below 2²³: float32 tier
            2**23,  # Σ|y| above 2²³, below 2⁵²: float64 tier
            2**52,  # Σ|y| above 2⁵²: exact integer tier
        ],
    )
    def test_stream_bit_identity_across_tiers(self, shift):
        results = self._stream_all_kernels(shift)
        y_ref, psi_ref, dstar_ref, delta_ref = results["legacy"]
        assert np.array_equal(psi_ref, y_ref[[0, 0, 1, 1, 2, 2]])  # one query per entry
        for name in ("dense", "dense32"):
            y, psi, dstar, delta = results[name]
            assert np.array_equal(y, y_ref), f"y differs (kernel={name}, shift=2^{shift.bit_length() - 1})"
            assert np.array_equal(psi, psi_ref), f"psi differs (kernel={name}, shift=2^{shift.bit_length() - 1})"
            assert np.array_equal(dstar, dstar_ref) and np.array_equal(delta, delta_ref), name

    def test_stream_tier_selection(self, monkeypatch):
        """The dense32 guard picks exactly the promised workspace per batch."""
        from repro.kernels import dense, dense32

        tiers = []
        real = dense.fold_stream

        def spy(edges, y, n, psi, dstar, delta, workspace, exact):
            tiers.append((str(workspace.dtype), exact))
            return real(edges, y, n, psi, dstar, delta, workspace, exact)

        monkeypatch.setattr(dense, "fold_stream", spy)
        sigma = np.ones(self.N, dtype=np.int8)
        for shift in (2**21, 2**23, 2**52):
            z = np.zeros(self.N, dtype=np.int64)
            dense32.stream_batch(self.EDGES, sigma, self.N, _ShiftNoise(shift), None, z, z.copy(), z.copy())
        assert tiers == [("float32", True), ("float64", True), ("float64", False)]

    @pytest.mark.parametrize(
        "value, tier",
        [
            (2**23 - 10, "float32"),  # inside the float32 budget
            (2**23 + 10, "float64"),  # over it, inside float64's
            (2**52 + 10, "exact-int"),  # over both: integer matmul
        ],
    )
    def test_psi_tier_and_value(self, value, tier, monkeypatch):
        from repro.kernels import dense

        dtypes = []
        real = dense.psi_pass

        def spy(design, y, with_dstar, dtype):
            dtypes.append("exact-int" if dtype is None else str(np.dtype(dtype)))
            return real(design, y, with_dstar, dtype)

        monkeypatch.setattr(dense, "psi_pass", spy)
        design = PoolingDesign.from_pools(5, [[4], [0, 1], [2, 3]])  # entry 4 in exactly one query
        y = np.array([value, 0, 0], dtype=np.int64)
        got = design.psi(y, kernel="dense32")
        assert got[4] == value  # Ψ_4 = y of entry 4's only query, bit-exact
        assert dtypes == [tier]
        fresh = PoolingDesign(design.n, design.entries, design.indptr)
        assert np.array_equal(got, fresh.psi(y, kernel="legacy"))

    def test_query_fallback_over_budget(self, monkeypatch):
        """Shrinking the float32 budget must push queries onto the float64 path."""
        from repro.kernels import dense, dense32

        design = PoolingDesign.sample(40, 9, np.random.default_rng(0))
        sigmas = np.stack([random_signal(40, 5, np.random.default_rng(i)) for i in range(3)])
        expected = design.query_results(sigmas, kernel="legacy")
        assert np.array_equal(dense32.query_results_batch(design, sigmas), expected)
        called = []
        real = dense.query_results_batch
        monkeypatch.setattr(dense, "query_results_batch", lambda d, b: called.append(1) or real(d, b))
        monkeypatch.setattr(dense32, "_EXACT_LIMIT32", 4.0)
        assert np.array_equal(dense32.query_results_batch(design, sigmas), expected)
        assert called, "over-budget query batch did not fall back to the float64 generation"

    @pytest.mark.parametrize("workers", [1, 2])
    def test_over_budget_stream_sharedmem(self, workers):
        """A noise channel blowing the float32 budget: still bit-identical,
        serial and across a worker pool."""
        sigma = random_signal(16, 3, np.random.default_rng(5))
        noise = GaussianNoise(5e6)  # |y| ~ 5·10⁶ ≫ 2²³/m: every batch over budget
        legacy = stream_design_stats(sigma, 33, root_seed=2, batch_queries=8, noise=noise, kernel="legacy")
        assert float(np.abs(legacy.y).sum()) > 2**23  # the guard genuinely trips
        with SharedMemBackend(workers, kernel="dense32") as backend:
            got = stream_design_stats(sigma, 33, root_seed=2, batch_queries=8, noise=noise, backend=backend)
        assert_stats_equal(got, legacy, f"(workers={workers})")


class TestThreadGovernor:
    """repro.kernels.threads: detection-tolerant governor behaviour."""

    def test_resolve_blas_threads(self, monkeypatch):
        monkeypatch.delenv(threads.BLAS_THREADS_ENV, raising=False)
        assert threads.resolve_blas_threads(None) is None
        assert threads.resolve_blas_threads(3) == 3
        monkeypatch.setenv(threads.BLAS_THREADS_ENV, "2")
        assert threads.resolve_blas_threads(None) == 2
        assert threads.resolve_blas_threads(5) == 5  # argument beats env
        with pytest.raises(ValueError):
            threads.resolve_blas_threads(0)
        monkeypatch.setenv(threads.BLAS_THREADS_ENV, "zero")
        with pytest.raises(ValueError):
            threads.resolve_blas_threads(None)

    def test_worker_thread_budget(self):
        assert threads.worker_thread_budget(2, cores=8) == 4
        assert threads.worker_thread_budget(3, cores=8) == 2
        assert threads.worker_thread_budget(16, cores=8) == 1  # never zero
        assert threads.worker_thread_budget(1, cores=8) == 8

    def test_worker_core_slices(self):
        assert threads.worker_core_slices(2, cores=8) == [(0, 1, 2, 3), (4, 5, 6, 7)]
        slices = threads.worker_core_slices(3, cores=8)
        assert sorted(c for s in slices for c in s) == list(range(8))  # full coverage, no overlap
        assert all(s for s in slices)
        # More workers than cores: round-robin, never an empty affinity set.
        assert threads.worker_core_slices(3, cores=1) == [(0,), (0,), (0,)]

    def test_blas_thread_limit_scoped(self):
        before = threads.get_blas_threads()
        with threads.blas_thread_limit(1):
            if threads.detect_blas() is not None:
                assert threads.get_blas_threads() == 1
        assert threads.get_blas_threads() == before
        with threads.blas_thread_limit(None):  # explicit no-op
            assert threads.get_blas_threads() == before

    def test_machine_provenance(self):
        prov = threads.machine_provenance()
        assert set(prov) == {"cpu_count", "blas_vendor", "blas_threads", "numpy"}
        assert prov["cpu_count"] >= 1
        assert isinstance(prov["blas_vendor"], str)
        assert prov["numpy"] == np.__version__

    def test_pin_workers_default(self, monkeypatch):
        monkeypatch.delenv(threads.PIN_WORKERS_ENV, raising=False)
        assert threads.pin_workers_default() is False
        for value in ("1", "true", "YES", "on"):
            monkeypatch.setenv(threads.PIN_WORKERS_ENV, value)
            assert threads.pin_workers_default() is True
        monkeypatch.setenv(threads.PIN_WORKERS_ENV, "0")
        assert threads.pin_workers_default() is False

    def test_backend_governance_defaults(self, monkeypatch):
        monkeypatch.delenv(threads.BLAS_THREADS_ENV, raising=False)
        monkeypatch.delenv(threads.PIN_WORKERS_ENV, raising=False)
        assert SerialBackend().blas_threads is None
        assert SerialBackend(blas_threads=2).blas_threads == 2
        multi = SharedMemBackend(4)
        assert multi.blas_threads == threads.worker_thread_budget(4)  # oversubscription guard
        assert SharedMemBackend(4, blas_threads=3).blas_threads == 3
        assert multi.pin_workers is False
        monkeypatch.setenv(threads.BLAS_THREADS_ENV, "2")
        assert SerialBackend().blas_threads == 2
        assert SharedMemBackend(4).blas_threads == 2

    @pytest.mark.parametrize("workers", [1, 2])
    def test_capped_pool_end_to_end(self, workers):
        """A worker pool under the thread cap + pinning still bit-matches serial."""
        sigma = random_signal(60, 7, np.random.default_rng(6))
        serial = stream_design_stats(sigma, 21, root_seed=9, batch_queries=8, kernel="dense32")
        with SharedMemBackend(workers, kernel="dense32", blas_threads=1, pin_workers=True) as backend:
            got = stream_design_stats(sigma, 21, root_seed=9, batch_queries=8, backend=backend)
        assert_stats_equal(got, serial, f"(workers={workers}, capped+pinned)")


class TestTuner:
    """repro.kernels.tune: probing, persistence, and dispatch precedence."""

    @pytest.fixture(autouse=True)
    def _clean_tuning_state(self, monkeypatch):
        monkeypatch.delenv(tune.TUNING_ENV, raising=False)
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        tune.clear_tuning()
        yield
        tune.clear_tuning()

    def _tiny(self):
        return tune.tune_kernels(64, 8, 2, thread_candidates=(1,), repeats=1)

    def test_tune_kernels_probes_every_cell(self):
        result = self._tiny()
        assert result.kernel in kernels.available_kernels()
        assert result.blas_threads == 1
        seen = {(t.op, t.kernel) for t in result.timings}
        assert seen == {(op, k) for op in ("stream", "psi", "queries") for k in kernels.available_kernels()}
        assert all(t.seconds >= 0 for t in result.timings)
        assert result.best("psi").seconds <= max(t.seconds for t in result.timings)

    def test_save_load_round_trip(self, tmp_path):
        result = self._tiny()
        path = tune.save_tuning(result, tmp_path / "tuning.json")
        loaded = tune.load_tuning(path)
        assert loaded.kernel == result.kernel
        assert loaded.blas_threads == result.blas_threads
        assert loaded.to_payload() == result.to_payload()

    def test_load_rejects_corrupt_and_unknown(self, tmp_path):
        bad = tmp_path / "tuning.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="unreadable"):
            tune.load_tuning(bad)
        bad.write_text('{"format_version": 1, "kernel": "turbo", "blas_threads": 1, "shape": {}, "timings": []}')
        with pytest.raises(ValueError, match="unknown kernel"):
            tune.load_tuning(bad)
        with pytest.raises(ValueError, match="unreadable"):
            tune.load_tuning(tmp_path / "missing.json")

    def test_applied_tuning_feeds_dispatch(self):
        result = self._tiny()
        tune.apply_tuning(result)
        assert kernels.resolve_kernel(None) == result.kernel
        assert tune.tuned_blas_threads() == 1
        # Explicit choices still win over tuning.
        assert kernels.resolve_kernel("legacy") == "legacy"
        tune.clear_tuning()
        assert kernels.resolve_kernel(None) == kernels.DEFAULT_KERNEL

    def test_env_kernel_beats_tuning(self, monkeypatch):
        result = self._tiny()
        tune.apply_tuning(result)
        monkeypatch.setenv(kernels.KERNEL_ENV, "legacy")
        assert kernels.resolve_kernel(None) == "legacy"

    def test_env_tuning_file_loaded_lazily(self, tmp_path, monkeypatch):
        result = self._tiny()
        path = tune.save_tuning(result, tmp_path / "tuning.json")
        monkeypatch.setenv(tune.TUNING_ENV, str(path))
        tune.clear_tuning()  # re-arm the lazy load
        assert kernels.resolve_kernel(None) == result.kernel

    def test_default_tuning_path(self, tmp_path, monkeypatch):
        from repro.designs.store import DESIGN_STORE_ENV

        monkeypatch.delenv(DESIGN_STORE_ENV, raising=False)
        assert tune.default_tuning_path() is None
        monkeypatch.setenv(DESIGN_STORE_ENV, str(tmp_path))
        assert tune.default_tuning_path() == tmp_path / tune.TUNING_FILE_NAME


class TestTopKFastPath:
    """blocks == 1 argpartition path selects exactly what the block path does."""

    @pytest.mark.parametrize("seed", range(5))
    def test_1d_matches_block_path(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(40):
            n = int(rng.integers(2, 150))
            k = int(rng.integers(1, n + 1))
            ties_heavy = rng.random() < 0.5
            scores = rng.integers(0, 4, size=n) if ties_heavy else rng.standard_normal(n)
            expected = parallel_top_k(scores, k, blocks=int(rng.integers(2, 6)))
            assert np.array_equal(parallel_top_k(scores, k, blocks=1), expected)

    @pytest.mark.parametrize("seed", range(3))
    def test_batch_matches_block_path(self, seed):
        rng = np.random.default_rng(100 + seed)
        for _ in range(25):
            B = int(rng.integers(1, 6))
            n = int(rng.integers(2, 90))
            k = int(rng.integers(1, n + 1))
            scores = rng.integers(0, 3, size=(B, n))
            expected = parallel_top_k(scores, k, blocks=3)
            assert np.array_equal(parallel_top_k(scores, k, blocks=1), expected)

    def test_all_tied(self):
        scores = np.zeros(10)
        assert np.array_equal(parallel_top_k(scores, 4, blocks=1), np.arange(4))
        assert np.array_equal(parallel_top_k(np.zeros((2, 10)), 4, blocks=1), np.tile(np.arange(4), (2, 1)))
