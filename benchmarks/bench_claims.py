"""In-text claims ("Table A") — §VI's 99%-overlap cell and companions."""

import pytest

from conftest import emit
from repro.experiments.claims import run_claim_table
from repro.util.asciiplot import format_table


@pytest.fixture(scope="module")
def claims(workers, repro_seed):
    return run_claim_table(trials=100, root_seed=repro_seed, workers=workers, csv_name="claims")


def test_claims_regenerate(benchmark, workers, repro_seed):
    rows = benchmark.pedantic(
        lambda: run_claim_table(trials=10, root_seed=repro_seed, workers=workers, csv_name=None),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 2


def test_claim_sec6_overlap_cell(claims, check):
    @check
    def _():
        """Paper: 'on average 99% of one-entries with 220 queries, n=1000, θ=0.3'.

        We hold the *shape*: overlap is high (>0.9) while exact recovery is
        still unreliable.  The measured absolute value (~0.94, CI printed) runs
        a few points below the paper's 0.99 — recorded in EXPERIMENTS.md.
        """
        row = next(r for r in claims if r.label == "sec6_99pct_overlap")
        emit(
            "Table A (in-text claims)",
            format_table(
                ["claim", "paper", "measured overlap", "95% CI", "success"],
                [
                    (
                        r.label,
                        f"{r.paper_value:.2f}",
                        f"{r.measured_overlap.mean:.3f}",
                        f"[{r.measured_overlap.lo:.3f}, {r.measured_overlap.hi:.3f}]",
                        f"{r.measured_success.mean:.2f}",
                    )
                    for r in claims
                ],
            ),
        )
        assert row.measured_overlap.mean >= 0.90
        assert row.measured_success.mean < 0.95  # exact recovery NOT yet reliable there


def test_claim_recovery_above_threshold(claims, check):
    @check
    def _():
        """At 1.3x the Theorem-1 count, recovery is mostly exact (finite-n slack)."""
        row = next(r for r in claims if r.label == "thm1_recovery")
        assert row.measured_overlap.mean >= 0.95
        assert row.measured_success.mean >= 0.6

