"""Tests for MN scores and their identities."""

import numpy as np
import pytest

from repro.core.design import PoolingDesign
from repro.core.scores import expected_score_gap, mn_scores, phi_from_psi, psi_phi_identity_check
from repro.core.signal import random_signal


@pytest.fixture
def instance():
    rng = np.random.default_rng(0)
    n, k, m = 200, 5, 150
    sigma = random_signal(n, k, rng)
    design = PoolingDesign.sample(n, m, rng)
    return design.stats(sigma), sigma, k


class TestMNScores:
    def test_shape_and_dtype(self, instance):
        stats, _, k = instance
        scores = mn_scores(stats, k)
        assert scores.shape == (stats.n,)
        assert scores.dtype == np.float64

    def test_centring_formula(self, instance):
        stats, _, k = instance
        scores = mn_scores(stats, k)
        manual = stats.psi - stats.dstar * (k / 2)
        assert np.allclose(scores, manual)

    def test_one_entries_score_higher_on_average(self, instance):
        stats, sigma, k = instance
        scores = mn_scores(stats, k)
        ones_mean = scores[sigma == 1].mean()
        zeros_mean = scores[sigma == 0].mean()
        assert ones_mean > zeros_mean + stats.m / 4  # separation ~ m/2

    def test_rejects_bad_k(self, instance):
        stats, _, _ = instance
        with pytest.raises(ValueError):
            mn_scores(stats, 0)


class TestPhi:
    def test_phi_removes_self_contribution(self, instance):
        stats, sigma, _ = instance
        phi = phi_from_psi(stats, sigma)
        ones = sigma == 1
        assert np.array_equal(phi[~ones], stats.psi[~ones])
        assert np.array_equal(phi[ones], stats.psi[ones] - stats.delta[ones])

    def test_identity_check_true_on_real_data(self, instance):
        stats, sigma, _ = instance
        assert psi_phi_identity_check(stats, sigma)

    def test_identity_check_false_on_corrupted_data(self, instance):
        stats, sigma, _ = instance
        bad = stats.y.copy()
        bad[0] += 1
        from repro.core.design import DesignStats

        corrupted = DesignStats(
            y=bad, psi=stats.psi, dstar=stats.dstar, delta=stats.delta, n=stats.n, m=stats.m, gamma=stats.gamma
        )
        assert not psi_phi_identity_check(corrupted, sigma)


class TestExpectedGap:
    def test_value(self):
        assert expected_score_gap(100, 5, 60) == 30.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            expected_score_gap(0, 5, 60)
