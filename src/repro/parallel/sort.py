"""Parallel sample sort, argsort, and top-k selection.

Lines 7–9 of Algorithm 1 sort the score vector; the paper points at the
parallel-sorting literature (Singh et al. 2018) for this step.  We provide
the classic **sample sort** decomposition:

1. each of ``P`` logical blocks is sorted locally;
2. ``P−1`` splitters are chosen from a regular sample of the sorted blocks;
3. every block is partitioned by the splitters (vectorised
   ``np.searchsorted``);
4. the per-(block, bucket) runs are concatenated per bucket and merged.

Top-k selection — all the MN decoder actually needs — is implemented as a
parallel *partial* selection: each block contributes its local top-k
(``np.argpartition``), and the final top-k is selected among ``P·k``
candidates, which is exact because the global top-k is a subset of the
union of local top-ks.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.partition import split_range
from repro.util.validation import check_positive_int

__all__ = ["parallel_sample_sort", "parallel_argsort", "parallel_top_k"]


def parallel_sample_sort(values: np.ndarray, blocks: int = 4, oversample: int = 8) -> np.ndarray:
    """Sort a 1-D array with the sample-sort decomposition.

    Equivalent to ``np.sort`` (the tests assert equality); exists to express
    and validate the decomposition that a multi-process or GPU deployment
    would use.  ``blocks`` plays the role of the processor count.

    Parameters
    ----------
    values:
        1-D array of comparable values.
    blocks:
        Number of logical processors.
    oversample:
        Sample multiplier for splitter selection; larger values give more
        even buckets.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("parallel_sample_sort expects a 1-D array")
    blocks = check_positive_int(blocks, "blocks")
    check_positive_int(oversample, "oversample")
    n = values.size
    if n <= 1 or blocks == 1:
        return np.sort(values, kind="stable")

    ranges = split_range(n, blocks)
    local = [np.sort(values[lo:hi], kind="stable") for lo, hi in ranges]

    # Regular sampling from each sorted block, then splitter selection.
    sample = []
    per_block = blocks * oversample
    for arr in local:
        if arr.size:
            idx = np.linspace(0, arr.size - 1, num=min(arr.size, per_block)).astype(np.intp)
            sample.append(arr[idx])
    sample = np.sort(np.concatenate(sample), kind="stable")
    cut = np.linspace(0, sample.size, num=blocks + 1).astype(np.intp)[1:-1]
    splitters = sample[np.clip(cut, 0, sample.size - 1)] if sample.size else np.empty(0, values.dtype)

    # Partition every block by the splitters and concatenate per bucket.
    buckets: "list[list[np.ndarray]]" = [[] for _ in range(blocks)]
    for arr in local:
        if not arr.size:
            continue
        bounds = np.searchsorted(arr, splitters, side="right")
        bounds = np.concatenate(([0], bounds, [arr.size]))
        for b in range(blocks):
            piece = arr[bounds[b] : bounds[b + 1]]
            if piece.size:
                buckets[b].append(piece)

    out = np.empty_like(values)
    pos = 0
    for b in range(blocks):
        if not buckets[b]:
            continue
        merged = np.sort(np.concatenate(buckets[b]), kind="stable")
        out[pos : pos + merged.size] = merged
        pos += merged.size
    assert pos == n, "sample sort lost elements"
    return out


def parallel_argsort(values: np.ndarray, blocks: int = 4, descending: bool = False) -> np.ndarray:
    """Index permutation sorting ``values``; ties broken by index (stable).

    Implemented as a key-value sample sort over ``(value, index)`` pairs,
    realised with a structured view so the heavy lifting stays in NumPy.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("parallel_argsort expects a 1-D array")
    blocks = check_positive_int(blocks, "blocks")
    n = values.size
    keys = -values if descending else values
    if blocks == 1 or n <= 1:
        return np.argsort(keys, kind="stable")
    ranges = split_range(n, blocks)
    locals_sorted = []
    for lo, hi in ranges:
        order = np.argsort(keys[lo:hi], kind="stable") + lo
        locals_sorted.append(order)
    # Merge P sorted index runs by (key, index).
    merged = np.concatenate(locals_sorted)
    order = np.lexsort((merged, keys[merged]))
    return merged[order]


def parallel_top_k(scores: np.ndarray, k: int, blocks: int = 4) -> np.ndarray:
    """Indices of the ``k`` largest scores, smallest-index-first on ties.

    Exactness argument: every member of the global top-k is in the top-k of
    its own block, hence among the ``blocks*k`` candidates.

    Batch-aware: a ``(B, n)`` score matrix selects per row and returns a
    ``(B, k)`` index matrix; row ``b`` equals the 1-D call on
    ``scores[b]``, using the same block decomposition.

    ``blocks == 1`` takes an ``np.argpartition`` fast path (the block
    machinery exists to express the multi-processor decomposition, which a
    single block does not need): partition for the ``k``-th largest value,
    then realise the deterministic smallest-index-first tie-break by
    taking every index strictly above the threshold plus the lowest tied
    indices.  Selection is identical to the block path — asserted by the
    regression tests — at ``O(n)`` instead of ``O(n log n)``.
    """
    scores = np.asarray(scores)
    if scores.ndim == 2:
        return _batch_top_k(scores, k, blocks)
    if scores.ndim != 1:
        raise ValueError("parallel_top_k expects a 1-D or (B, n) array")
    k = check_positive_int(k, "k")
    blocks = check_positive_int(blocks, "blocks")
    n = scores.size
    if k > n:
        raise ValueError(f"k={k} exceeds array length {n}")
    if k == n:
        return np.arange(n)
    if blocks == 1:
        thresh = scores[np.argpartition(scores, n - k)[n - k :]].min()
        above = np.flatnonzero(scores > thresh)
        sel = np.concatenate((above, np.flatnonzero(scores == thresh)[: k - above.size]))
        if sel.size == k:
            return np.sort(sel)
        # NaN scores defeat the threshold comparisons (both > and == come
        # back empty); fall through to the lexsort path rather than
        # silently returning fewer than k indices.

    candidates = []
    for lo, hi in split_range(n, blocks):
        size = hi - lo
        if size == 0:
            continue
        kk = min(k, size)
        # Deterministic local selection by (-score, index): argpartition's
        # arbitrary tie handling would make the candidate set depend on the
        # block decomposition, breaking block invariance under ties.
        block_scores = scores[lo:hi]
        local = np.lexsort((np.arange(lo, hi), -block_scores))[:kk] + lo
        candidates.append(local)
    cand = np.concatenate(candidates)
    # Deterministic tie-break: sort candidates by (-score, index), take k.
    order = np.lexsort((cand, -scores[cand]))
    return np.sort(cand[order[:k]])


def _batch_top_k(scores: np.ndarray, k: int, blocks: int) -> np.ndarray:
    """Row-wise exact top-k over a ``(B, n)`` score matrix.

    The same candidate construction as the 1-D path — each block
    contributes its local top-k, the winner set is selected among the
    ``blocks*k`` candidates — vectorised over the batch axis with stable
    argsorts (stable on ``-scores`` realises the smallest-index-first
    tie-break).  ``blocks == 1`` takes the row-wise ``argpartition`` fast
    path (see :func:`parallel_top_k`), vectorised over rows with a
    cumulative tie-rank mask.
    """
    k = check_positive_int(k, "k")
    blocks = check_positive_int(blocks, "blocks")
    if scores.shape[0] < 1:
        raise ValueError("batched scores must hold at least one row")
    n = scores.shape[1]
    if k > n:
        raise ValueError(f"k={k} exceeds array length {n}")
    if k == n:
        return np.tile(np.arange(n), (scores.shape[0], 1))
    if blocks == 1:
        part = np.argpartition(scores, n - k, axis=1)[:, n - k :]
        thresh = np.take_along_axis(scores, part, axis=1).min(axis=1, keepdims=True)
        above = scores > thresh
        ties = scores == thresh
        need = k - above.sum(axis=1, keepdims=True)
        chosen = above | (ties & (np.cumsum(ties, axis=1) <= need))
        # Every row holds exactly k marks (NaN scores would break this —
        # fall through to the block path instead of a reshape error);
        # nonzero walks row-major, so the reshape yields ascending indices
        # per row.
        if int(chosen.sum()) == scores.shape[0] * k:
            return np.nonzero(chosen)[1].reshape(scores.shape[0], k)

    candidates = []
    for lo, hi in split_range(n, blocks):
        size = hi - lo
        if size == 0:
            continue
        kk = min(k, size)
        local = np.argsort(-scores[:, lo:hi], axis=1, kind="stable")[:, :kk] + lo
        candidates.append(local)
    cand = np.concatenate(candidates, axis=1)
    cand.sort(axis=1)  # ascending index so the stable final sort breaks ties low
    cand_scores = np.take_along_axis(scores, cand, axis=1)
    sel = np.argsort(-cand_scores, axis=1, kind="stable")[:, :k]
    top = np.take_along_axis(cand, sel, axis=1)
    top.sort(axis=1)
    return top
