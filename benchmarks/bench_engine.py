"""Batched engine vs per-trial loop (the PR's headline speedup, tracked).

One grid point at paper-panel scale (``n = 10^4``), ``B = 64`` signals:
the classic harness runs 64 independent trials (64 designs sampled,
simulated and decoded one by one), the batched engine samples **one**
design and decodes all 64 signals in a single vectorised pass.  The
measured speedup is recorded in ``benchmarks/results/BENCH_engine.json``
(``extra.speedup_x``) so the perf trajectory is tracked across PRs; the
shape assertion requires the >= 3x contract of the engine PR.

Also tracked: backend equivalence cost (SerialBackend vs SharedMemBackend
on the same batched grid) and the ``reconstruct_batch`` facade against B
independent ``reconstruct`` calls.
"""

import time

import numpy as np

from repro.core.reconstruction import reconstruct
from repro.core.signal import random_signals
from repro.engine import SerialBackend, SharedMemBackend, reconstruct_batch, run_trial_grid, signals_oracle
from repro.engine.grid import run_batched_point
from repro.experiments.runner import run_trials

N = 10_000
B = 64
M = 600
THETA = 0.3
SEED = 2022


def _seed_loop():
    """The pre-engine per-trial Python loop at one grid point."""
    return run_trials(N, M, theta=THETA, trials=B, root_seed=SEED, point_id=0)


def _batched_point():
    """The batched engine on the same point (one design, B signals)."""
    return run_batched_point(N, M, theta=THETA, trials=B, root_seed=SEED, point_id=0)


class TestEngineSpeedup:
    def test_batched_grid_speedup(self, benchmark, repro_seed):
        # Warm both paths once, then time the seed loop manually (it is the
        # reference, not the tracked artifact) and the batched point through
        # the benchmark fixture (the tracked artifact).
        run_batched_point(N, 50, theta=THETA, trials=4, root_seed=1, point_id=0)
        t0 = time.perf_counter()
        seed_results = _seed_loop()
        seed_s = time.perf_counter() - t0

        batched = benchmark.pedantic(_batched_point, rounds=3, iterations=1)
        batched_s = benchmark.stats.stats.median

        speedup = seed_s / batched_s
        benchmark.extra_info.update(
            {
                "n": N,
                "m": M,
                "B": B,
                "theta": THETA,
                "backend": "serial",
                "seed_loop_s": round(seed_s, 4),
                "batched_s": round(batched_s, 4),
                "speedup_x": round(speedup, 2),
            }
        )
        print(f"\nseed loop {seed_s:.2f}s vs batched {batched_s:.2f}s -> {speedup:.1f}x")

        # Same signal streams, so the per-trial ground truths match; success
        # rates must land in the same regime even though designs differ.
        seed_rate = float(np.mean([r.success for r in seed_results]))
        assert abs(seed_rate - float(batched.success.mean())) <= 0.5
        # The engine PR's acceptance contract.
        assert speedup >= 3.0


class TestBackendParity:
    def test_sharedmem_grid_matches_serial(self, benchmark, workers):
        ms = [200, 400, 600]
        serial = run_trial_grid(2000, ms, theta=THETA, trials=16, root_seed=SEED, backend=SerialBackend())

        with SharedMemBackend(min(workers, len(ms))) as backend:
            par = benchmark(
                lambda: run_trial_grid(2000, ms, theta=THETA, trials=16, root_seed=SEED, backend=backend)
            )
        benchmark.extra_info.update({"n": 2000, "ms": ms, "B": 16, "backend": "sharedmem"})
        for a, b in zip(serial, par):
            assert np.array_equal(a.success, b.success)
            assert np.array_equal(a.overlap, b.overlap)


class TestReconstructBatchFacade:
    def test_facade_amortisation(self, benchmark):
        n, m, batch = 4000, 400, 32
        sigmas = random_signals(n, 8, batch, np.random.default_rng(5))
        oracle = signals_oracle(sigmas)

        report = benchmark(lambda: reconstruct_batch(n, m, oracle, batch, rng=np.random.default_rng(SEED)))
        benchmark.extra_info.update({"n": n, "m": m, "B": batch, "backend": "serial"})

        t0 = time.perf_counter()
        singles = [
            reconstruct(
                n,
                m,
                lambda pools, s=sigmas[b]: [int(s[p].sum()) for p in pools],
                rng=np.random.default_rng(SEED),
            )
            for b in range(batch)
        ]
        singles_s = time.perf_counter() - t0
        benchmark.extra_info["singles_s"] = round(singles_s, 4)

        for b in range(batch):
            assert np.array_equal(singles[b].sigma_hat, report.sigma_hat[b])
        assert singles_s > benchmark.stats.stats.median  # batching must not be slower
