"""Design-store serving: warm *cross-process* decode vs cold compile (tracked).

PR 4's ``DesignCache`` amortised compilation within one process; the
``DesignStore`` extends that across processes: a compiled design (entries,
indptr, ``Δ*``, ``Δ`` **and** the dense ``Ψ`` block) persists in a
content-addressed directory and later processes mmap-attach it instead of
recompiling.  This benchmark measures exactly the two contracts the store
PR claims, at paper-panel scale (``n = 10^4``):

* **cross-process warm decode** — a *second* Python process (stand-in for
  a repeated CLI invocation or a forked grid worker) attaches from the
  store and decodes; measured inside the child, against a cold child that
  compiles from the key.  Acceptance: warm beats cold by >= 5x, with
  bit-identical output.
* **Ψ-block sharing** — ``SharedMemBackend`` workers adopt the parent's
  published block zero-copy: every worker reports a GEMM-ready block on
  attach (no per-worker rematerialisation), cutting per-worker resident
  growth by the block size (``block_bytes`` per worker, recorded).

``DesignStore.stats`` / ``DesignCache.stats`` ride along in the JSON
payloads so hit/eviction rates are tracked across PRs.
"""

import dataclasses
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.mn import MNDecoder
from repro.core.signal import random_signals
from repro.designs import DesignCache, DesignKey, DesignStore, attach_compiled, compile_from_key, fetch_compiled
from repro.engine import SharedMemBackend

N = 10_000
M = 600
K = 16
B = 64
SEED = 2022

KEY = DesignKey.for_stream(N, M, root_seed=SEED, batch_queries=256)

_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: The measured child: everything after interpreter/import startup is timed
#: inside the process, so the record isolates attach-vs-compile, not fork
#: overhead.  ``warm`` attaches from the store; ``cold`` compiles from key.
_CHILD = r"""
import json, sys, time
import numpy as np
from repro.core.mn import MNDecoder
from repro.designs import DesignKey, DesignStore, compile_from_key

mode, root, y_path = sys.argv[1], sys.argv[2], sys.argv[3]
n, m, k, seed = (int(a) for a in sys.argv[4:8])
key = DesignKey.for_stream(n, m, root_seed=seed, batch_queries=256)
y = np.load(y_path)
t0 = time.perf_counter()
if mode == "warm":
    compiled = DesignStore(root).get(key)
    assert compiled is not None, "store miss in warm child"
else:
    compiled = compile_from_key(key)
sigma_hat = MNDecoder().compile(compiled).decode(y, k)
seconds = time.perf_counter() - t0
print(json.dumps({"seconds": seconds, "support": np.flatnonzero(sigma_hat).tolist()}))
"""


def _run_child(mode: str, root: Path, y_path: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(root), str(y_path), str(N), str(M), str(K), str(SEED)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


def _observed(batch: int) -> np.ndarray:
    compiled = compile_from_key(KEY)
    sigmas = random_signals(N, K, batch, np.random.default_rng(7))
    return compiled.query_results(sigmas)


class TestWarmCrossProcessDecode:
    def test_second_process_decodes_warm(self, benchmark, repro_seed, tmp_path):
        root = tmp_path / "store"
        store = DesignStore(root)
        store.get_or_compile(KEY, lambda: compile_from_key(KEY))  # publication process

        y_path = tmp_path / "y.npy"
        np.save(y_path, _observed(1)[0])

        rounds = 3
        cold = [_run_child("cold", root, y_path) for _ in range(rounds)]
        warm = [_run_child("warm", root, y_path) for _ in range(rounds)]
        cold_s = float(np.median([r["seconds"] for r in cold]))
        warm_s = float(np.median([r["seconds"] for r in warm]))
        speedup = cold_s / warm_s

        # The tracked wall-time record: one full warm child invocation
        # (interpreter startup included — the honest CLI-reinvocation cost).
        benchmark.pedantic(lambda: _run_child("warm", root, y_path), rounds=1, iterations=1)
        benchmark.extra_info.update(
            {
                "n": N,
                "m": M,
                "k": K,
                "B": 1,
                "backend": "subprocess",
                "cold_s": round(cold_s, 5),
                "warm_s": round(warm_s, 5),
                "speedup_x": round(speedup, 2),
                "store_stats": dataclasses.asdict(store.stats),
                "store_cumulative": store.persistent_stats(),
            }
        )
        print(f"\ncross-process: cold compile+decode {cold_s * 1e3:.1f}ms vs warm attach+decode {warm_s * 1e3:.2f}ms -> {speedup:.1f}x")

        # Bit-identical supports across every child, warm or cold.
        supports = {tuple(r["support"]) for r in cold + warm}
        assert len(supports) == 1
        # The store PR's acceptance contract at n = 10^4.
        assert speedup >= 5.0
        # Exactly one compilation ever happened for this key across all
        # processes (parent published; children only attached or compiled
        # throwaway artifacts in the cold arm, which never publish).
        assert store.persistent_stats()["publishes"] == 1

    def test_layered_fetch_hits_in_process_first(self, benchmark, repro_seed, tmp_path):
        store = DesignStore(tmp_path / "layered")
        cache = DesignCache()
        fetch_compiled(KEY, lambda: compile_from_key(KEY), cache=cache, store=store)

        compiled = benchmark(lambda: fetch_compiled(KEY, lambda: compile_from_key(KEY), cache=cache, store=store))
        benchmark.extra_info.update(
            {
                "n": N,
                "m": M,
                "backend": "serial",
                "cache_stats": dataclasses.asdict(cache.stats),
                "store_stats": dataclasses.asdict(store.stats),
            }
        )
        assert compiled.key == KEY
        assert cache.stats.hit_rate > 0.9  # steady state never touches disk


def _block_probe_task(payload, cache):
    """Worker probe: is the Ψ block GEMM-ready *at attach*, pre-decode?"""
    (descriptor,) = payload
    compiled = attach_compiled(descriptor, cache)
    return compiled._block is not None


class TestSharedBlockResidency:
    def test_workers_adopt_published_block(self, benchmark, repro_seed, tmp_path):
        store = DesignStore(tmp_path / "store")
        compiled = store.get_or_compile(KEY, lambda: compile_from_key(KEY))
        Y = _observed(B)
        workers = 2

        serial_out = MNDecoder().compile(compiled).decode_batch(Y, K)
        with SharedMemBackend(workers) as backend:
            with MNDecoder(backend=backend).compile(compiled) as decoder:
                decoder.decode_batch(Y, K)  # publish + first fan-out
                descriptor = decoder._residency.descriptor
                probes = backend.map(_block_probe_task, [(descriptor,)] * workers)
                t0 = time.perf_counter()
                fanned = benchmark(lambda: decoder.decode_batch(Y, K))
                elapsed = time.perf_counter() - t0

        benchmark.extra_info.update(
            {
                "n": N,
                "m": M,
                "k": K,
                "B": B,
                "backend": f"sharedmem[{workers}]",
                "block_bytes": compiled.block_bytes,
                "workers": workers,
                "block_preattached_workers": int(sum(probes)),
                "per_worker_bytes_avoided": compiled.block_bytes,
                "store_stats": dataclasses.asdict(store.stats),
            }
        )
        print(
            f"\nΨ block {compiled.block_bytes / 1e6:.0f}MB shared across {workers} workers "
            f"(all pre-attached: {all(probes)}); warm decode_batch {elapsed * 1e3:.1f}ms"
        )

        assert np.array_equal(serial_out, fanned)
        # Every worker adopted the published block instead of rebuilding it:
        # per-worker resident growth excludes the block entirely.
        assert all(probes)
