"""Fig. 4 — overlap vs m (same grid as Fig. 3, overlap projection).

Paper: nearly all one-entries are identified well before exact recovery
becomes likely; overlap curves dominate success curves pointwise.
"""

import pytest

from conftest import emit
from repro.experiments.fig4 import overlap_leads_success, run_fig4
from repro.util.asciiplot import format_table

THETAS = (0.1, 0.2, 0.3, 0.4)


@pytest.fixture(scope="module")
def panel(workers, repro_seed):
    return run_fig4(
        n=1000,
        thetas=THETAS,
        ms=(20, 40, 80, 160, 240, 320, 420, 540, 680, 840, 1000),
        trials=10,
        root_seed=repro_seed,
        workers=workers,
        csv_name="fig4_n1000",
    )


def test_fig4_regenerate(benchmark, workers, repro_seed):
    series = benchmark.pedantic(
        lambda: run_fig4(n=1000, thetas=(0.3,), ms=(200, 600), trials=4, root_seed=repro_seed, workers=workers),
        rounds=1,
        iterations=1,
    )
    assert len(series) == 1


def test_fig4_overlap_dominates_success(panel, check):
    @check
    def _():
        """At every grid point, overlap ≥ exact-success rate."""
        rows = []
        for s in panel:
            for p in s.points:
                rows.append((s.theta, p.m, f"{p.overlap.mean:.3f}", f"{p.success.mean:.2f}"))
                assert p.overlap.mean >= p.success.mean - 1e-12
        emit("Fig. 4 (n=1000)", format_table(["theta", "m", "overlap", "success"], rows))


def test_fig4_overlap_reaches_090_early(panel, check):
    @check
    def _():
        """Overlap hits 0.9 no later than exact success does (paper's point)."""
        for s in panel:
            assert overlap_leads_success(s, level=0.9), f"theta={s.theta}"


def test_fig4_overlap_high_at_panel_end(panel, check):
    @check
    def _():
        """By the right edge of the panel overlap is essentially 1."""
        for s in panel:
            assert s.points[-1].overlap.mean >= 0.97


def test_fig4_overlap_monotone_trend(panel, check):
    @check
    def _():
        """Overlap increases with m, modulo small-sample noise."""
        for s in panel:
            means = [p.overlap.mean for p in s.points]
            # Non-strict trend: θ=0.1 saturates almost immediately.
            assert means[-1] >= means[0]
            violations = sum(1 for a, b in zip(means, means[1:]) if b < a - 0.05)
            assert violations <= 1, f"theta={s.theta}: {means}"

