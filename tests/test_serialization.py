"""Tests for design persistence."""

import numpy as np
import pytest

from repro.core.design import PoolingDesign
from repro.core.mn import mn_reconstruct
from repro.core.serialization import FORMAT_VERSION, load_design, save_design
from repro.core.signal import random_signal


@pytest.fixture
def instance():
    rng = np.random.default_rng(0)
    n, k, m = 200, 4, 150
    sigma = random_signal(n, k, rng)
    design = PoolingDesign.sample(n, m, rng)
    return design, sigma, design.query_results(sigma)


class TestRoundtrip:
    def test_design_only(self, tmp_path, instance):
        design, _, _ = instance
        path = save_design(tmp_path / "run1", design)
        assert path.suffix == ".npz"
        loaded, y = load_design(path)
        assert y is None
        assert loaded.n == design.n
        assert np.array_equal(loaded.entries, design.entries)
        assert np.array_equal(loaded.indptr, design.indptr)

    def test_design_with_results(self, tmp_path, instance):
        design, sigma, y = instance
        path = save_design(tmp_path / "run2.npz", design, y=y)
        loaded, y2 = load_design(path)
        assert np.array_equal(y, y2)
        # Re-decoding from the audit file reproduces the estimate.
        assert np.array_equal(
            mn_reconstruct(loaded, y2, 4),
            mn_reconstruct(design, y, 4),
        )

    def test_ragged_design_roundtrip(self, tmp_path):
        design = PoolingDesign.from_pools(10, [[0, 1], [2, 3, 4], [5]])
        path = save_design(tmp_path / "ragged", design)
        loaded, _ = load_design(path)
        assert loaded.m == 3
        assert np.array_equal(loaded.pool(1), np.array([2, 3, 4]))


class TestValidation:
    def test_wrong_y_length_rejected_on_save(self, tmp_path, instance):
        design, _, y = instance
        with pytest.raises(ValueError, match="length m"):
            save_design(tmp_path / "bad", design, y=y[:-1])

    def test_not_a_design_file(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError, match="not a pooled-repro design file"):
            load_design(path)

    def test_wrong_version_rejected(self, tmp_path, instance):
        design, _, _ = instance
        path = tmp_path / "v999.npz"
        np.savez(
            path,
            format_version=np.asarray(FORMAT_VERSION + 1),
            n=np.asarray(design.n),
            entries=design.entries,
            indptr=design.indptr,
        )
        with pytest.raises(ValueError, match="version"):
            load_design(path)

    def test_corrupted_structure_rejected(self, tmp_path, instance):
        design, _, _ = instance
        path = tmp_path / "corrupt.npz"
        bad_indptr = design.indptr.copy()
        bad_indptr[-1] += 5  # points past the entries array
        np.savez(
            path,
            format_version=np.asarray(FORMAT_VERSION),
            n=np.asarray(design.n),
            entries=design.entries,
            indptr=bad_indptr,
        )
        with pytest.raises(ValueError):
            load_design(path)
