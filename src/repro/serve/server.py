"""The asyncio decode service behind ``pooled-repro serve``.

One long-lived process owning a :class:`~repro.serve.coalescer.DecoderPool`
(attached decoders over the design cache/store) and a
:class:`~repro.serve.coalescer.Coalescer` (per-key micro-batching), fed by
either transport:

* **TCP** — ``pooled-repro serve --host 127.0.0.1 --port 0`` accepts any
  number of concurrent connections; each connection pipelines requests
  (responses correlate by ``request_id``, not order);
* **stdio** — ``pooled-repro serve --stdio`` speaks the same protocol on
  the stdin/stdout pair, the dependency-light mode for supervisors that
  prefer pipes to sockets.

Lifecycle guarantees (the tentpole's robustness contract):

* a malformed line yields a structured error response for that line only —
  the connection and every other request survive;
* admission is bounded: past ``max_queue`` concurrently admitted requests,
  submissions are refused with a structured ``overloaded`` error *before*
  buffering anything;
* every admitted request resolves within ``timeout_ms`` or receives a
  structured ``timeout`` error;
* ``SIGTERM``/``SIGINT`` (and stdin EOF in stdio mode) trigger a graceful
  drain — stop admitting, flush open buckets, decode what was admitted,
  deliver every response, then exit 0.

The server types against the :class:`~repro.designs.protocol.Decoder`
protocol only; :class:`~repro.core.mn.MNDecoder` is simply the reference
implementation the CLI plugs in.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.serve.coalescer import Coalescer, DecoderPool
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    encode_error,
    encode_success,
    parse_request,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.designs.cache import DesignCache
    from repro.designs.protocol import Decoder
    from repro.designs.store import DesignStore

__all__ = ["ServeConfig", "DecodeServer", "serve_forever"]

#: Environment defaults for the CLI knobs (README env table).
SERVE_WINDOW_ENV = "REPRO_SERVE_WINDOW_MS"
SERVE_MAX_BATCH_ENV = "REPRO_SERVE_MAX_BATCH"
SERVE_MAX_QUEUE_ENV = "REPRO_SERVE_MAX_QUEUE"
SERVE_BREAKER_THRESHOLD_ENV = "REPRO_SERVE_BREAKER_THRESHOLD"
SERVE_BREAKER_COOLDOWN_ENV = "REPRO_SERVE_BREAKER_COOLDOWN_MS"
SERVE_DECODER_ENV = "REPRO_SERVE_DECODER"


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of one serve process (see ``docs/serving.md``).

    ``batch_window_ms`` trades tail latency for throughput: each key's
    first pending request waits at most this long for company before its
    micro-batch flushes (a full ``max_batch`` flushes immediately).

    ``decode_retries`` failed ``decode_batch`` calls per micro-batch are
    retried on a freshly attached decoder before the batch fails;
    ``breaker_threshold`` consecutive batch failures for one key open its
    circuit breaker for ``breaker_cooldown_ms`` (requests fast-fail with
    ``unavailable`` until a half-open probe succeeds).

    ``default_decoder`` names the registry decoder a request without an
    explicit ``decoder`` field runs under (``REPRO_SERVE_DECODER`` sets it
    from the environment via the CLI).
    """

    batch_window_ms: float = 2.0
    max_batch: int = 64
    max_queue: int = 1024
    timeout_ms: float = 10_000.0
    max_designs: int = 8
    drain_timeout_s: float = 30.0
    decode_retries: int = 1
    breaker_threshold: int = 5
    breaker_cooldown_ms: float = 5000.0
    default_decoder: str = "mn"

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be non-negative")
        if self.max_batch < 1 or self.max_queue < 1 or self.max_designs < 1:
            raise ValueError("max_batch, max_queue and max_designs must be positive")
        if self.timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive")
        if self.decode_retries < 0:
            raise ValueError("decode_retries must be non-negative")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be positive")
        if self.breaker_cooldown_ms < 0:
            raise ValueError("breaker_cooldown_ms must be non-negative")
        if not self.default_decoder or not isinstance(self.default_decoder, str):
            raise ValueError("default_decoder must be a non-empty string")

    @property
    def window_s(self) -> float:
        return self.batch_window_ms / 1e3

    @property
    def timeout_s(self) -> float:
        return self.timeout_ms / 1e3

    @property
    def breaker_cooldown_s(self) -> float:
        return self.breaker_cooldown_ms / 1e3


class DecodeServer:
    """The coalescing decode service, transport-agnostic core.

    Parameters
    ----------
    decoder:
        Any :class:`~repro.designs.protocol.Decoder`, or a mapping of
        registry names to decoders for a multi-decoder server — the
        server never imports a concrete decoder class.  A bare decoder is
        served under the ``"mn"`` name for back-compat.
    config:
        The :class:`ServeConfig` knobs.
    cache, store:
        Optional L1/L2 compiled-design layers handed to every read-through
        ``compile`` (ambient ``REPRO_DESIGN_CACHE``/``REPRO_DESIGN_STORE``
        resolution happens in the CLI, not here).
    """

    def __init__(
        self,
        decoder: "Decoder | Mapping[str, Decoder]",
        config: "ServeConfig | None" = None,
        *,
        cache: "DesignCache | None" = None,
        store: "DesignStore | None" = None,
    ):
        self.config = config if config is not None else ServeConfig()
        # One executor thread: decodes serialise (one GEMM at a time keeps
        # BLAS unconflicted) while the loop keeps admitting and timing out.
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-serve-decode")
        self.pool = DecoderPool(
            decoder,
            max_designs=self.config.max_designs,
            cache=cache,
            store=store,
            executor=self._executor,
        )
        self.coalescer = Coalescer(
            self.pool,
            window_s=self.config.window_s,
            max_batch=self.config.max_batch,
            max_queue=self.config.max_queue,
            executor=self._executor,
            decode_retries=self.config.decode_retries,
            breaker_threshold=self.config.breaker_threshold,
            breaker_cooldown_s=self.config.breaker_cooldown_s,
        )
        self._request_tasks: "set[asyncio.Task]" = set()
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._connections: "set[asyncio.StreamWriter]" = {*()}
        self._tcp_server: "asyncio.base_events.Server | None" = None
        self._stopping = asyncio.Event()

    # -- request handling -------------------------------------------------------

    async def _process_line(self, line: bytes, send) -> None:
        """One request line → exactly one response line, never an exception."""
        try:
            request = parse_request(line, default_decoder=self.config.default_decoder)
        except ProtocolError as exc:
            await send(encode_error(exc.request_id, exc.code, exc.message))
            return
        try:
            future = self.coalescer.submit(request)
        except ProtocolError as exc:
            await send(encode_error(exc.request_id, exc.code, exc.message))
            return
        try:
            support = await asyncio.wait_for(future, self.config.timeout_s)
        except asyncio.TimeoutError:
            await send(encode_error(request.request_id, "timeout", f"deadline of {self.config.timeout_ms:g}ms elapsed before the decode ran"))
            return
        except ProtocolError as exc:
            await send(encode_error(request.request_id, exc.code, exc.message))
            return
        await send(encode_success(request.request_id, support, n=request.key.n, k=request.k, decoder=request.decoder))

    async def handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """Serve one NDJSON stream until EOF (shared by TCP and stdio)."""
        self._connections.add(writer)
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)
        write_lock = asyncio.Lock()

        async def send(response: str) -> None:
            async with write_lock:
                writer.write(response.encode("utf-8") + b"\n")
                try:
                    await writer.drain()
                except (ConnectionError, RuntimeError):  # client went away mid-response
                    pass

        tasks: "set[asyncio.Task]" = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # An over-long line cannot be resynchronised reliably;
                    # report it and end this connection (others unaffected).
                    await send(encode_error(None, "bad_request", f"request line exceeds the {MAX_LINE_BYTES}-byte limit"))
                    break
                except ConnectionError:
                    break
                if not line:
                    break  # EOF
                if not line.strip():
                    continue
                task = asyncio.ensure_future(self._process_line(line, send))
                tasks.add(task)
                self._request_tasks.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._request_tasks.discard)
            if tasks:
                await asyncio.gather(*list(tasks), return_exceptions=True)
        finally:
            self._connections.discard(writer)
            if conn_task is not None:
                self._conn_tasks.discard(conn_task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    # -- transports -------------------------------------------------------------

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> "tuple[str, int]":
        """Bind the TCP transport; returns the actual ``(host, port)``."""
        self._tcp_server = await asyncio.start_server(
            self.handle_connection,
            host,
            port,
            limit=MAX_LINE_BYTES + 1024,
        )
        bound = self._tcp_server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def serve_stdio(self) -> None:
        """Speak the protocol on this process's stdin/stdout pair."""
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader(limit=MAX_LINE_BYTES + 1024)
        await loop.connect_read_pipe(lambda: asyncio.StreamReaderProtocol(reader), sys.stdin)
        w_transport, w_protocol = await loop.connect_write_pipe(asyncio.streams.FlowControlMixin, sys.stdout)
        writer = asyncio.StreamWriter(w_transport, w_protocol, reader, loop)
        await self.handle_connection(reader, writer)

    # -- lifecycle --------------------------------------------------------------

    def request_stop(self) -> None:
        """Signal-safe stop request: begins the graceful drain."""
        self._stopping.set()

    async def wait_stopped(self) -> None:
        await self._stopping.wait()

    async def drain(self) -> None:
        """Graceful drain: admit nothing new, decode and answer the admitted.

        1. stop accepting connections; 2. flush every open bucket and
        refuse new submissions (``shutting_down``); 3. wait for dispatched
        batches; 4. wait for response writes (bounded by
        ``drain_timeout_s``); 5. close connections and decoders.
        """
        if self._tcp_server is not None:
            self._tcp_server.close()
        self.coalescer.begin_drain()
        await self.coalescer.drain()
        if self._request_tasks:
            # Every future is resolved; give the response writers a bounded
            # window to flush (a wedged client cannot hold the drain open).
            await asyncio.wait(list(self._request_tasks), timeout=self.config.drain_timeout_s)
        for writer in list(self._connections):
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - transport already gone
                pass
        if self._conn_tasks:
            # Closed transports feed EOF to the readers, so handlers exit
            # cleanly within the grace window; stragglers (a reader that
            # cannot see the close, e.g. a still-open stdin) are cancelled.
            _done, stragglers = await asyncio.wait(list(self._conn_tasks), timeout=1.0)
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.gather(*stragglers, return_exceptions=True)
        if self._tcp_server is not None:
            await self._tcp_server.wait_closed()
        self.pool.close()
        self._executor.shutdown(wait=True)


async def serve_forever(
    decoder: "Decoder | Mapping[str, Decoder]",
    config: "ServeConfig | None" = None,
    *,
    stdio: bool = False,
    host: str = "127.0.0.1",
    port: int = 0,
    cache: "DesignCache | None" = None,
    store: "DesignStore | None" = None,
    ready: "Optional[asyncio.Future]" = None,
    install_signal_handlers: bool = True,
) -> None:
    """Run a :class:`DecodeServer` until SIGTERM/SIGINT (or stdin EOF), then drain.

    ``ready`` (an optional future) resolves to the bound ``(host, port)``
    once the TCP transport is listening — how in-process tests and the
    benchmark learn the ephemeral port.  In stdio mode it resolves to
    ``None`` when the stream handler is up.
    """
    server = DecodeServer(decoder, config, cache=cache, store=store)
    loop = asyncio.get_running_loop()
    if install_signal_handlers:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX loop
                pass
    try:
        if stdio:
            if ready is not None and not ready.done():
                ready.set_result(None)
            stdio_task = asyncio.ensure_future(server.serve_stdio())
            stop_task = asyncio.ensure_future(server.wait_stopped())
            # stdin EOF is the pipe-world SIGTERM: either ends the serve loop.
            await asyncio.wait({stdio_task, stop_task}, return_when=asyncio.FIRST_COMPLETED)
            stop_task.cancel()
            await server.drain()
            # The stdio handler ends once its writer closes in drain().
            await asyncio.gather(stdio_task, return_exceptions=True)
        else:
            bound = await server.start_tcp(host, port)
            if ready is not None and not ready.done():
                ready.set_result(bound)
            print(f"serving on {bound[0]}:{bound[1]}", flush=True)
            await server.wait_stopped()
            await server.drain()
        stats = server.coalescer.stats
        print(
            f"drained: {stats.requests} requests in {stats.batches} batches "
            f"(mean batch {stats.mean_batch:.1f}, peak queue {stats.peak_admitted}, "
            f"overloaded {stats.overloaded})",
            file=sys.stderr,
            flush=True,
        )
    finally:
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(sig)
                except (NotImplementedError, RuntimeError, ValueError):  # pragma: no cover
                    pass
