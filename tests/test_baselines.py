"""Tests for the baseline decoders (LP, OMP, AMP, binary GT)."""

import numpy as np
import pytest

from repro.baselines.amp import amp_decode
from repro.baselines.bin_gt import BernoulliORDesign, comp_decode, dd_decode, run_gt_trial
from repro.baselines.lp import basis_pursuit_decode
from repro.baselines.omp import omp_decode
from repro.core.design import PoolingDesign
from repro.core.signal import exact_recovery, random_signal


def _instance(n, k, m, seed):
    rng = np.random.default_rng(seed)
    sigma = random_signal(n, k, rng)
    design = PoolingDesign.sample(n, m, rng)
    return design, sigma, design.query_results(sigma)


EASY = dict(n=250, k=5, m=220)


class TestBasisPursuit:
    def test_recovers_easy_instance(self):
        design, sigma, y = _instance(seed=0, **EASY)
        assert exact_recovery(sigma, basis_pursuit_decode(design, y, EASY["k"]))

    def test_output_weight_k(self):
        design, sigma, y = _instance(150, 4, 20, 1)
        assert basis_pursuit_decode(design, y, 4).sum() == 4

    def test_rejects_bad_k(self):
        design, _, y = _instance(50, 2, 10, 2)
        with pytest.raises(ValueError):
            basis_pursuit_decode(design, y, 51)

    def test_rejects_bad_y(self):
        design, _, _ = _instance(50, 2, 10, 2)
        with pytest.raises(ValueError):
            basis_pursuit_decode(design, np.zeros(11), 2)


class TestOMP:
    def test_recovers_easy_instance(self):
        design, sigma, y = _instance(seed=3, **EASY)
        assert exact_recovery(sigma, omp_decode(design, y, EASY["k"]))

    def test_output_weight_k(self):
        design, sigma, y = _instance(150, 4, 15, 4)
        assert omp_decode(design, y, 4).sum() == 4

    def test_never_selects_duplicate(self):
        design, sigma, y = _instance(100, 6, 80, 5)
        est = omp_decode(design, y, 6)
        assert est.sum() == 6  # distinct support of size k

    def test_rejects_bad_args(self):
        design, _, y = _instance(50, 2, 10, 6)
        with pytest.raises(ValueError):
            omp_decode(design, y, 0)


class TestAMP:
    def test_recovers_easy_instance(self):
        design, sigma, y = _instance(seed=7, **EASY)
        result = amp_decode(design, y, EASY["k"])
        assert exact_recovery(sigma, result.sigma_hat)

    def test_converges(self):
        design, sigma, y = _instance(seed=8, **EASY)
        result = amp_decode(design, y, EASY["k"])
        assert result.converged
        assert result.iterations <= 50

    def test_posterior_in_unit_interval(self):
        design, sigma, y = _instance(200, 4, 60, 9)
        result = amp_decode(design, y, 4)
        assert (result.posterior >= 0).all() and (result.posterior <= 1).all()

    def test_tau_history_recorded(self):
        design, sigma, y = _instance(200, 4, 60, 10)
        result = amp_decode(design, y, 4)
        assert len(result.tau_history) == result.iterations
        assert all(t > 0 for t in result.tau_history)

    def test_rejects_k_ge_n(self):
        design, _, y = _instance(50, 2, 10, 11)
        with pytest.raises(ValueError):
            amp_decode(design, y, 50)


class TestBinaryGT:
    def test_or_results_binary(self):
        rng = np.random.default_rng(0)
        sigma = random_signal(100, 5, rng)
        design = BernoulliORDesign.sample(100, 60, 5, rng)
        r = design.query_results(sigma)
        assert set(np.unique(r)).issubset({0, 1})

    def test_comp_no_false_negatives(self):
        # COMP never clears a true one-entry.
        rng = np.random.default_rng(1)
        sigma = random_signal(200, 6, rng)
        design = BernoulliORDesign.sample(200, 80, 6, rng)
        est = comp_decode(design, design.query_results(sigma))
        assert ((sigma == 1) <= (est == 1)).all()

    def test_dd_no_false_positives(self):
        # DD only declares definite defectives.
        rng = np.random.default_rng(2)
        sigma = random_signal(200, 6, rng)
        design = BernoulliORDesign.sample(200, 80, 6, rng)
        est = dd_decode(design, design.query_results(sigma))
        assert ((est == 1) <= (sigma == 1)).all()

    def test_dd_recovers_with_many_tests(self):
        rng = np.random.default_rng(3)
        sigma = random_signal(300, 5, rng)
        design = BernoulliORDesign.sample(300, 400, 5, rng)
        est = dd_decode(design, design.query_results(sigma))
        assert exact_recovery(sigma, est)

    def test_trial_wrapper(self):
        r = run_gt_trial(500, 300, theta=0.25, seed=0)
        assert r.n == 500
        assert 0.0 <= r.dd_overlap <= 1.0
        # DD success implies COMP candidates contained the truth.
        if r.dd_success:
            assert r.dd_overlap == 1.0

    def test_result_length_validation(self):
        rng = np.random.default_rng(4)
        design = BernoulliORDesign.sample(50, 20, 3, rng)
        with pytest.raises(ValueError):
            comp_decode(design, np.zeros(21, dtype=np.int8))
        with pytest.raises(ValueError):
            dd_decode(design, np.zeros(19, dtype=np.int8))

    def test_membership_validation(self):
        with pytest.raises(ValueError):
            BernoulliORDesign(np.zeros(5, dtype=bool))
