"""Tests for gnuplot script emission."""

import pytest

from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.gnuplot import emit_fig2_script, emit_fig34_script


@pytest.fixture(autouse=True)
def _isolated_results(tmp_path, monkeypatch):
    monkeypatch.setenv("POOLED_REPRO_RESULTS", str(tmp_path / "results"))


class TestFig2Script:
    def test_emits_next_to_csv(self):
        run_fig2(ns=(100,), thetas=(0.3,), trials=2, root_seed=0, csv_name="fig2")
        path = emit_fig2_script("fig2", thetas=(0.3,))
        assert path.exists()
        text = path.read_text()
        assert "set logscale xy" in text
        assert "fig2.csv" in text
        assert "theta=0.3" in text

    def test_series_per_theta(self):
        path = emit_fig2_script("fig2x", thetas=(0.1, 0.2))
        text = path.read_text()
        assert text.count("with linespoints") == 2
        assert text.count("dashtype 3") == 2  # theory lines


class TestFig34Script:
    def test_success_metric(self):
        run_fig3(n=200, thetas=(0.3,), ms=(50, 150), trials=2, root_seed=0, csv_name="fig3_test")
        path = emit_fig34_script("fig3_test", metric="success", thetas=(0.3,))
        text = path.read_text()
        assert "set yrange [0:1.05]" in text
        assert "using ($1==0.3? $3 : 1/0):4" in text

    def test_overlap_metric_uses_column_7(self):
        path = emit_fig34_script("fig4_test", metric="overlap", thetas=(0.2,))
        assert ":7" in path.read_text()

    def test_bad_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            emit_fig34_script("x", metric="speed")
