"""Shared centring algebra for the compressed-sensing baselines.

LP, OMP and AMP all work on the *centred* count matrix: the pooled-count
columns have mean ``Γ/n`` (``Γ`` = pool size, ``1/2·n`` by default), so the
matrix and the observation must be shifted before any correlation or
message-passing step makes sense:

    Ã = A − Γ/n,    ỹ = y − k·Γ/n.

For ragged designs (pools of unequal size) ``Γ`` is the *mean* pool size —
the exact value ``float(np.diff(indptr).mean())`` the legacy decoders used,
reproduced here bit-for-bit so the compiled decoder paths stay bit-identical
to the one-shot functions.  AMP additionally needs the per-entry variance
``v = Γ/n·(1 − 1/n)`` of the count distribution, also centralised here.

Every helper takes plain arrays (or a :class:`~repro.core.design.PoolingDesign`
``indptr``) so both the legacy per-call path and the compiled artifacts can
share one implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pool_gamma",
    "column_mean",
    "pool_variance",
    "centre_matrix",
    "centre_observations",
    "column_norms",
    "check_observations",
]


def pool_gamma(indptr: np.ndarray) -> float:
    """Mean pool size ``Γ`` from a CSR ``indptr`` (ragged-design safe).

    Bit-identical to the legacy decoders' ``float(np.diff(indptr).mean())``:
    the sum of pool sizes is an exact integer, so the division is the same
    single rounding every caller performed.
    """
    return float(np.diff(np.asarray(indptr)).mean())


def column_mean(gamma: float, n: int) -> float:
    """Per-entry column mean ``μ = Γ/n`` of the count matrix."""
    return gamma / n


def pool_variance(gamma: float, n: int) -> float:
    """Per-entry variance ``v = Γ/n·(1 − 1/n)`` of the count distribution.

    The sampling-with-replacement count of one item in one pool is
    Binomial(Γ, 1/n); this is its variance, the scaling AMP's standardised
    sensing matrix ``F = (A − μ)/√(v·m)`` assumes.
    """
    return gamma * (1.0 / n) * (1.0 - 1.0 / n)


def centre_matrix(a: np.ndarray, mean: float) -> np.ndarray:
    """Centred matrix ``Ã = A − μ`` (new float64 array)."""
    return np.asarray(a, dtype=np.float64) - mean


def centre_observations(y: np.ndarray, k: "int | np.ndarray", mean: float) -> np.ndarray:
    """Centred observations ``ỹ = y − k·μ`` for scalar or per-row ``k``.

    With a batch ``Y`` of shape ``(B, m)`` and a per-row ``k`` array of
    shape ``(B,)``, the subtraction broadcasts row-wise.
    """
    y = np.asarray(y, dtype=np.float64)
    if np.ndim(k) > 0 and y.ndim == 2:
        return y - np.asarray(k, dtype=np.float64)[:, None] * mean
    return y - np.asarray(k, dtype=np.float64) * mean


def column_norms(a_c: np.ndarray) -> np.ndarray:
    """ℓ2 norms per centred column, with zero norms mapped to 1.

    The zero-norm guard keeps OMP's correlation ratio finite for columns
    the design never sampled (possible in tiny ragged designs).
    """
    norms = np.linalg.norm(a_c, axis=0)
    norms[norms == 0] = 1.0
    return norms


def check_observations(y: np.ndarray, m: int, *, name: str = "y") -> np.ndarray:
    """Validate one observation vector: shape ``(m,)``, finite, float64.

    Raises a clean :class:`ValueError` for the wrong length or non-finite
    entries (NaN/±inf) instead of letting them surface as opaque numpy
    errors deep inside ``lstsq`` or the AMP iteration.
    """
    y = np.asarray(y, dtype=np.float64)
    if y.shape != (m,):
        raise ValueError(f"{name} must have length m={m}")
    if not np.isfinite(y).all():
        raise ValueError(f"{name} must be finite; got NaN or infinity")
    return y
