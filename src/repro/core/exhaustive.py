"""The information-theoretic decoder: exhaustive search over supports.

Theorem 2 is a statement about the *student with unlimited computational
power*: above ``m_IT = 2k·ln(n/k)/ln k`` the observed pair ``(G, y)``
determines ``σ`` uniquely w.h.p., so exhaustive search recovers it.  This
module implements that search (vectorised over candidate batches) plus the
overlap-resolved census ``Z_{k,ℓ}`` that Propositions 7/11 analyse — which
lets the benchmark suite *measure* the phase transition at ``c = 2``.

Complexity is ``C(n,k)·m`` — fine for the small instances the IT experiment
uses (``n ≤ ~30``); a guard refuses anything bigger.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List

import numpy as np

from repro.core.design import PoolingDesign
from repro.util.validation import check_binary_signal, check_positive_int

__all__ = ["exhaustive_decode", "count_consistent_by_overlap", "consistent_supports"]

#: Refuse searches beyond this many candidate supports.
MAX_CANDIDATES = 5_000_000


def _candidate_guard(n: int, k: int) -> int:
    total = math.comb(n, k)
    if total > MAX_CANDIDATES:
        raise ValueError(
            f"C({n},{k}) = {total} candidate supports exceeds the exhaustive-search guard ({MAX_CANDIDATES})"
        )
    return total


def _counts_transpose(design: PoolingDesign) -> np.ndarray:
    """Dense ``(n, m)`` count matrix ``Aᵀ`` for vectorised candidate scoring."""
    return design.counts_matrix().to_dense().T.astype(np.int64)


def consistent_supports(design: PoolingDesign, y: np.ndarray, k: int, batch: int = 2048) -> "List[np.ndarray]":
    """All weight-``k`` supports whose query results equal ``y``.

    The ground truth is always a member (sanity-checked by the tests); the
    list has length 1 exactly when information-theoretic recovery succeeds.
    """
    k = check_positive_int(k, "k")
    y = np.asarray(y, dtype=np.int64)
    if y.shape != (design.m,):
        raise ValueError(f"y must have length m={design.m}")
    _candidate_guard(design.n, k)
    at = _counts_transpose(design)

    found: "List[np.ndarray]" = []
    combo_iter = itertools.combinations(range(design.n), k)
    while True:
        block = list(itertools.islice(combo_iter, batch))
        if not block:
            break
        idx = np.asarray(block, dtype=np.int64)  # (B, k)
        y_hat = at[idx].sum(axis=1)  # (B, m)
        hits = np.flatnonzero((y_hat == y).all(axis=1))
        for h in hits:
            found.append(idx[h].copy())
    return found


def exhaustive_decode(design: PoolingDesign, y: np.ndarray, k: int) -> "tuple[np.ndarray | None, int]":
    """ML decoding with unlimited compute.

    Returns
    -------
    (sigma_hat, num_consistent):
        ``sigma_hat`` is the reconstructed signal when the consistent
        support is *unique*, else ``None`` (the student would have to
        guess); ``num_consistent`` is ``Z_k(G, y)``.
    """
    supports = consistent_supports(design, y, k)
    if len(supports) == 1:
        sigma_hat = np.zeros(design.n, dtype=np.int8)
        sigma_hat[supports[0]] = 1
        return sigma_hat, 1
    return None, len(supports)


def count_consistent_by_overlap(design: PoolingDesign, y: np.ndarray, sigma: np.ndarray, k: int) -> "Dict[int, int]":
    """The census ``ℓ ↦ Z_{k,ℓ}(G, y)`` of Propositions 7/11.

    Counts *alternative* consistent signals by their overlap ``ℓ`` with the
    ground truth (the ground truth itself, overlap ``k``, is excluded —
    matching the paper's definition ``σ ≠ σ``).
    """
    sigma = check_binary_signal(sigma, length=design.n)
    true_support = set(np.flatnonzero(sigma).tolist())
    if len(true_support) != k:
        raise ValueError(f"sigma has weight {len(true_support)}, expected k={k}")
    census: "Dict[int, int]" = {ell: 0 for ell in range(k)}
    for supp in consistent_supports(design, y, k):
        ell = len(true_support.intersection(supp.tolist()))
        if ell == k:
            continue  # the ground truth itself
        census[ell] += 1
    return census
