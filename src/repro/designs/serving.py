"""The decode-only serving path: compile once, decode forever.

``MNDecoder.compile(design)`` binds a configured decoder to a
:class:`~repro.designs.compiled.CompiledDesign` and returns a
:class:`CompiledMNDecoder` whose :meth:`~CompiledMNDecoder.decode` /
:meth:`~CompiledMNDecoder.decode_batch` skip design streaming entirely:
every call is one ``Ψ`` GEMM against the resident incidence block plus the
top-k selection.  This is the hot path a deployment serves — observed
result vectors arriving against a small set of deployed designs.

Execution composes with the backend layer: a
:class:`~repro.engine.backend.SharedMemBackend` fans ``decode_batch`` rows
over workers that attach the compiled design zero-copy
(:mod:`repro.designs.sharing`) — the design crosses the process boundary
once per worker, never per call.  All paths are bit-identical to the
one-shot :func:`~repro.core.mn.mn_reconstruct` because every intermediate
is integer-exact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.designs.compiled import CompiledDesign
from repro.designs.sharing import SharedCompiledDesign, attach_compiled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.mn import MNDecoder

__all__ = ["CompiledMNDecoder"]


def _psi_rows_task(payload, cache):
    """Worker task: ``Ψ`` rows for a slice of the result batch.

    The compiled design arrives as a shared-memory descriptor and is
    attached (and structurally validated) once per worker.  The dense
    incidence block travels with the publication, so workers adopt the
    parent's block zero-copy and every task — including the first — runs
    a single GEMM with no per-worker block materialisation.
    """
    descriptor, y_rows = payload
    compiled = attach_compiled(descriptor, cache)
    return compiled.psi(y_rows)


class CompiledMNDecoder:
    """An MN decoder bound to one compiled design.

    The reference implementation of the
    :class:`~repro.designs.protocol.CompiledDecoder` protocol — layers
    above (the serve front-end, cross-decoder benchmarks) type against
    that protocol, not this class.

    Create via :meth:`repro.core.mn.MNDecoder.compile`.  Instances hold the
    (optional) shared-memory residency of their design, so long-lived
    serving processes should ``close()`` them (or use ``with``) when the
    design is undeployed.
    """

    def __init__(self, compiled: CompiledDesign, decoder: "MNDecoder"):
        self.compiled = compiled
        self.decoder = decoder
        self._residency: "SharedCompiledDesign | None" = None

    # -- the hot path -----------------------------------------------------------

    def decode(self, y: np.ndarray, k: int) -> np.ndarray:
        """Decode one observed result vector — no sampling, no streaming.

        Bit-identical to ``mn_reconstruct(design, y, k)`` and (for matched
        stream keys) to the streaming one-shot path on the same ``y``.
        """
        y = np.asarray(y, dtype=np.int64)
        if y.ndim != 1:
            raise ValueError("decode expects one (m,) result vector; use decode_batch for (B, m)")
        return self.decoder.decode(self.compiled.stats_for(y), k)

    def decode_batch(self, Y: np.ndarray, k: "int | np.ndarray") -> np.ndarray:
        """Decode a ``(B, m)`` batch of observed results in one pass.

        With a multi-worker backend on the bound decoder, the ``Ψ`` rows fan
        out over workers attached to the shared-memory residency; the top-k
        selection stays in the parent.  Output is bit-identical for every
        backend (``Ψ`` is integer-exact).
        """
        Y = np.asarray(Y, dtype=np.int64)
        if Y.ndim != 2 or Y.shape[1] != self.compiled.m or Y.shape[0] < 1:
            raise ValueError(f"Y must have shape (B, m={self.compiled.m})")
        stats = self._stats_batch(Y, self.decoder.backend)
        return self.decoder.decode(stats, k)

    def _stats_batch(self, Y: np.ndarray, backend) -> "object":
        from repro.core.design import DesignStats

        if backend is not None and backend.workers > 1 and Y.shape[0] > 1:
            psi = self._psi_sharedmem(Y, backend)
        else:
            psi = self.compiled.psi(Y)
        return DesignStats(
            y=Y,
            psi=psi,
            dstar=self.compiled.dstar,
            delta=self.compiled.delta,
            n=self.compiled.n,
            m=self.compiled.m,
            gamma=self.compiled.gamma,
        )

    def _psi_sharedmem(self, Y: np.ndarray, backend) -> np.ndarray:
        """``Ψ`` rows computed by workers against the published design."""
        if self._residency is None:
            self._residency = SharedCompiledDesign.publish(self.compiled)
        descriptor = self._residency.descriptor
        splits = np.array_split(Y, min(backend.workers, Y.shape[0]))
        payloads = [(descriptor, rows) for rows in splits if rows.shape[0]]
        return np.concatenate(backend.map(_psi_rows_task, payloads), axis=0)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Release the shared-memory residency (if any).  Idempotent."""
        if self._residency is not None:
            self._residency.destroy()
            self._residency = None

    def __enter__(self) -> "CompiledMNDecoder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledMNDecoder(compiled={self.compiled!r}, decoder={self.decoder!r})"
