"""Microbenchmarks of the hot kernels (regression tracking, not a figure).

Covers: MT19937-64 raw generation, design sampling, the batched Ψ/Δ*
accumulation kernel, CSR mat-vec vs SciPy, parallel top-k — and the
dense-vs-legacy kernel pairs (``TestDenseVsLegacy``), whose
``speedup_x`` extra records track the dense incidence-block layer's win
over the sort-based reference at several problem sizes, plus one
end-to-end ``reconstruct_batch`` pair showing the compounding effect on
the batched engine — and the generation-2 float32 tier
(``TestKernelGen2``), whose ``gen2_speedup_x`` records track dense32
against dense on the same hot kernels alongside the shared-memory
BLAS-cap throughput probe.
"""

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.design import PoolingDesign, stream_design_stats
from repro.core.signal import random_signal
from repro.engine.backend import SerialBackend, SharedMemBackend
from repro.engine.batch import reconstruct_batch, signals_oracle
from repro.parallel.matvec import CSRMatrix
from repro.parallel.sort import parallel_sample_sort, parallel_top_k
from repro.rng.mt19937 import MT19937_64


def _best_of(fn, repeats=2):
    """Best wall time of a few runs — cheap, warmup-tolerant point estimate."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestRNGKernels:
    def test_mt19937_64_bulk(self, benchmark):
        gen = MT19937_64(5489)
        out = benchmark(lambda: gen.random_raw(1 << 16))
        assert out.size == 1 << 16

    def test_numpy_pcg_reference(self, benchmark):
        """Reference point: NumPy's C-level PCG64 on the same workload."""
        gen = np.random.default_rng(5489)
        out = benchmark(lambda: gen.integers(0, 2**63, 1 << 16, dtype=np.int64))
        assert out.size == 1 << 16


class TestDesignKernels:
    def test_design_sampling(self, benchmark):
        rng = np.random.default_rng(0)
        design = benchmark(lambda: PoolingDesign.sample(10_000, 100, rng))
        assert design.m == 100

    def test_stream_stats_kernel(self, benchmark):
        sigma = random_signal(10_000, 16, np.random.default_rng(0))
        stats = benchmark(lambda: stream_design_stats(sigma, 200, root_seed=1))
        assert stats.m == 200

    def test_query_results(self, benchmark):
        rng = np.random.default_rng(1)
        sigma = random_signal(10_000, 16, rng)
        design = PoolingDesign.sample(10_000, 500, rng)
        y = benchmark(lambda: design.query_results(sigma))
        assert y.shape == (500,)


class TestDenseVsLegacy:
    """Dense incidence-block kernels vs the sort-based legacy reference.

    Each test benchmarks the dense path (the recorded median) and times
    the legacy path inline, recording the ratio as
    ``extra.speedup_x`` — the number the README's speedup table and the
    PR acceptance gate read.  Output parity is asserted exactly once per
    pairing (the full parity matrix lives in tests/test_kernels.py).
    """

    @pytest.mark.parametrize("n", [4_000, 10_000, 40_000])
    def test_stream_stats_dense_vs_legacy(self, benchmark, n):
        sigma = random_signal(n, 16, np.random.default_rng(0))
        m = 200

        def run(kernel):
            return stream_design_stats(sigma, m, root_seed=1, kernel=kernel)

        assert np.array_equal(run("dense").psi, run("legacy").psi)
        legacy_s = _best_of(lambda: run("legacy"))
        dense_s = _best_of(lambda: run("dense"), repeats=3)
        stats = benchmark.pedantic(lambda: run("dense"), rounds=3, iterations=1)
        assert stats.m == m
        benchmark.extra_info["n"] = n
        benchmark.extra_info["m"] = m
        benchmark.extra_info["kernel"] = "dense"
        benchmark.extra_info["legacy_s"] = round(legacy_s, 6)
        benchmark.extra_info["speedup_x"] = round(legacy_s / dense_s, 2)
        if n >= 10_000:
            # Shape assert only (measured margin is 3-4x; shared runners
            # jitter): the dense kernel must never be slower than the row
            # sorts at scale.  The ≥3x acceptance claim lives in the
            # recorded speedup_x, gated by compare_bench history.
            assert legacy_s / dense_s > 1.0

    def test_materialised_psi_dense_vs_legacy(self, benchmark):
        n, m, B = 10_000, 400, 64
        rng = np.random.default_rng(1)
        design = PoolingDesign.sample(n, m, rng)
        sigmas = np.stack([random_signal(n, 16, np.random.default_rng(i)) for i in range(B)])
        y = design.query_results(sigmas, kernel="dense")

        def run(kernel):
            fresh = PoolingDesign(design.n, design.entries, design.indptr)  # cold caches
            return fresh.psi(y, kernel=kernel)

        assert np.array_equal(run("dense"), run("legacy"))
        legacy_s = _best_of(lambda: run("legacy"))
        dense_s = _best_of(lambda: run("dense"), repeats=3)
        out = benchmark.pedantic(lambda: run("dense"), rounds=3, iterations=1)
        assert out.shape == (B, n)
        benchmark.extra_info.update(n=n, m=m, B=B, kernel="dense")
        benchmark.extra_info["legacy_s"] = round(legacy_s, 6)
        benchmark.extra_info["speedup_x"] = round(legacy_s / dense_s, 2)

    def test_query_results_dense_vs_legacy(self, benchmark):
        n, m, B = 10_000, 400, 64
        rng = np.random.default_rng(2)
        design = PoolingDesign.sample(n, m, rng)
        sigmas = np.stack([random_signal(n, 16, np.random.default_rng(i)) for i in range(B)])

        def run(kernel):
            return design.query_results(sigmas, kernel=kernel)

        assert np.array_equal(run("dense"), run("legacy"))
        legacy_s = _best_of(lambda: run("legacy"))
        dense_s = _best_of(lambda: run("dense"), repeats=3)
        out = benchmark.pedantic(lambda: run("dense"), rounds=3, iterations=1)
        assert out.shape == (B, m)
        benchmark.extra_info.update(n=n, m=m, B=B, kernel="dense")
        benchmark.extra_info["legacy_s"] = round(legacy_s, 6)
        benchmark.extra_info["speedup_x"] = round(legacy_s / dense_s, 2)

    def test_reconstruct_batch_dense_vs_legacy(self, benchmark):
        """End-to-end: the dense kernels compounding with the batched engine."""
        n, m, B, k = 10_000, 400, 64, 16
        sigmas = np.stack([random_signal(n, k, np.random.default_rng(i)) for i in range(B)])
        oracle = signals_oracle(sigmas)

        def run(kernel):
            return reconstruct_batch(
                n, m, oracle, B, k=k, rng=np.random.default_rng(7), backend=SerialBackend(kernel=kernel)
            )

        assert np.array_equal(run("dense").sigma_hat, run("legacy").sigma_hat)
        legacy_s = _best_of(lambda: run("legacy"))
        dense_s = _best_of(lambda: run("dense"), repeats=3)
        report = benchmark.pedantic(lambda: run("dense"), rounds=3, iterations=1)
        assert report.sigma_hat.shape == (B, n)
        benchmark.extra_info.update(n=n, m=m, B=B, k=k, kernel="dense")
        benchmark.extra_info["legacy_s"] = round(legacy_s, 6)
        benchmark.extra_info["speedup_x"] = round(legacy_s / dense_s, 2)


class TestKernelGen2:
    """Generation 2: float32-tier kernels vs the float64 dense generation.

    ``gen2_speedup_x`` records dense/dense32 time per hot kernel at
    n=10⁴ — the acceptance gate asks for ≥ 1.3× on at least one (the
    GEMM-bound Ψ pass is the expected winner: half the memory traffic,
    twice the SIMD lanes).  Parity is asserted once per pairing; the full
    boundary matrix lives in tests/test_kernels.py.
    """

    N, M, B = 10_000, 400, 64

    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(1)
        design = PoolingDesign.sample(self.N, self.M, rng)
        sigmas = np.stack([random_signal(self.N, 16, np.random.default_rng(i)) for i in range(self.B)])
        y = design.query_results(sigmas, kernel="dense")
        return design, sigmas, y

    def _record(self, benchmark, run, out_check):
        assert np.array_equal(run("dense"), run("dense32"))
        dense_s = _best_of(lambda: run("dense"), repeats=3)
        gen2_s = _best_of(lambda: run("dense32"), repeats=3)
        out = benchmark.pedantic(lambda: run("dense32"), rounds=3, iterations=1)
        out_check(out)
        benchmark.extra_info.update(n=self.N, m=self.M, B=self.B, kernel="dense32")
        benchmark.extra_info["dense_s"] = round(dense_s, 6)
        benchmark.extra_info["gen2_speedup_x"] = round(dense_s / gen2_s, 2)

    def test_stream_stats_dense32_vs_dense(self, benchmark):
        sigma = random_signal(self.N, 16, np.random.default_rng(0))

        def run(kernel):
            return stream_design_stats(sigma, 200, root_seed=1, kernel=kernel).psi

        self._record(benchmark, run, lambda psi: psi.shape == (self.N,))

    def test_materialised_psi_dense32_vs_dense(self, benchmark, workload):
        design, _, y = workload

        def run(kernel):
            fresh = PoolingDesign(design.n, design.entries, design.indptr)  # cold caches
            return fresh.psi(y, kernel=kernel)

        self._record(benchmark, run, lambda out: out.shape == (self.B, self.N))
        # The GEMM-bound pass is where the float32 tier must pay off.
        assert benchmark.extra_info["gen2_speedup_x"] > 1.0

    def test_query_results_dense32_vs_dense(self, benchmark, workload):
        design, sigmas, _ = workload

        def run(kernel):
            return design.query_results(sigmas, kernel=kernel)

        self._record(benchmark, run, lambda out: out.shape == (self.B, self.M))

    def test_sharedmem_blas_cap_throughput(self, benchmark):
        """The W-worker BLAS cap must not regress multi-worker throughput.

        Runs the streaming sweep end to end through a 2-worker pool with
        the oversubscription cap (the SharedMemBackend default) and with
        the cap explicitly widened to the full machine, recording the
        ratio — on any machine the capped run should be at least
        comparable (≤ ~1 is a win; > 1.15 would mean the governor hurts).
        """
        sigma = random_signal(self.N, 16, np.random.default_rng(3))

        def run(blas_threads):
            with SharedMemBackend(2, kernel="dense32", blas_threads=blas_threads) as backend:
                return stream_design_stats(sigma, 200, root_seed=1, backend=backend)

        from repro.kernels.threads import cpu_count, worker_thread_budget

        capped = _best_of(lambda: run(None), repeats=3)  # default: cores // 2 cap
        uncapped = _best_of(lambda: run(cpu_count()), repeats=3)
        stats = benchmark.pedantic(lambda: run(None), rounds=2, iterations=1)
        assert stats.m == 200
        benchmark.extra_info.update(n=self.N, m=200, workers=2, kernel="dense32")
        # On a 1-core runner both configurations resolve to 1 thread and the
        # ratio is pure fork jitter; the recorded thread counts disambiguate.
        benchmark.extra_info["capped_threads"] = worker_thread_budget(2)
        benchmark.extra_info["uncapped_threads"] = cpu_count()
        benchmark.extra_info["uncapped_s"] = round(uncapped, 6)
        benchmark.extra_info["capped_over_uncapped"] = round(capped / uncapped, 3)


class TestLinalgKernels:
    @pytest.fixture(scope="class")
    def csr_pair(self):
        rng = np.random.default_rng(2)
        dense = rng.random((2000, 1500))
        dense[dense > 0.05] = 0.0
        ours = CSRMatrix.from_dense(dense)
        ref = sp.csr_matrix(dense)
        x = rng.random(1500)
        return ours, ref, x

    def test_csr_matvec_ours(self, benchmark, csr_pair):
        ours, _, x = csr_pair
        out = benchmark(lambda: ours.matvec(x))
        assert out.shape == (2000,)

    def test_csr_matvec_scipy_reference(self, benchmark, csr_pair):
        _, ref, x = csr_pair
        out = benchmark(lambda: ref @ x)
        assert out.shape == (2000,)

    def test_csr_close_to_scipy(self, csr_pair):
        ours, ref, x = csr_pair
        assert np.allclose(ours.matvec(x), ref @ x)


class TestSortKernels:
    def test_sample_sort(self, benchmark):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(200_000)
        out = benchmark(lambda: parallel_sample_sort(x, blocks=8))
        assert out.size == x.size

    def test_numpy_sort_reference(self, benchmark):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(200_000)
        out = benchmark(lambda: np.sort(x))
        assert out.size == x.size

    def test_top_k(self, benchmark):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(500_000)
        idx = benchmark(lambda: parallel_top_k(x, 100, blocks=8))
        assert idx.size == 100

    def test_top_k_fast_path(self, benchmark):
        """blocks=1 argpartition fast path — the decoder's default route."""
        rng = np.random.default_rng(4)
        x = rng.standard_normal(500_000)
        block_s = _best_of(lambda: parallel_top_k(x, 100, blocks=8))
        fast_s = _best_of(lambda: parallel_top_k(x, 100, blocks=1), repeats=3)
        idx = benchmark(lambda: parallel_top_k(x, 100, blocks=1))
        assert np.array_equal(idx, parallel_top_k(x, 100, blocks=8))
        # speedup_x tracks the fast path against the block decomposition;
        # the np.sort reference lives in its own record above.
        benchmark.extra_info["speedup_x"] = round(block_s / fast_s, 2)
        assert fast_s < block_s
