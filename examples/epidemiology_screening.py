#!/usr/bin/env python3
"""Pooled epidemiological screening — the paper's §I-D motivating example.

Scenario (numbers from the paper): screening a cohort of n = 10,000 random
probes from a population with HIV prevalence like the UK's (~16 expected
positives, i.e. θ ≈ 0.3).  Each *query* is one pooled PCR run on a robot;
PCR runtime dominates everything else, so all pools must be prepared up
front and amplified in parallel.

This script compares three lab configurations on the same cohort:

1. individual testing          — 10,000 reactions,
2. fully parallel pooled design — m ≈ m_MN reactions, one PCR cycle,
3. a 96-well plate robot        — the same pooled design in ⌈m/96⌉ cycles,

and reports reactions used, wall-clock (simulated PCR time), and accuracy.

Run:  python examples/epidemiology_screening.py
"""

import numpy as np

from repro import PoolingDesign, SimulatedLab, m_mn_threshold, random_signal, theta_to_k
from repro.machine.latency import LognormalLatency

RNG = np.random.default_rng(42)
N = 10_000
THETA = 0.3
PCR_MEDIAN_MIN = 90.0  # a pooled RT-PCR run takes ~1.5h

k = theta_to_k(N, THETA)
print(f"cohort n = {N}, prevalence exponent θ = {THETA}  ->  k = {k} expected positives")

# The hidden infection status vector (ground truth only the assay "knows").
sigma = random_signal(N, k, RNG)

# Query budget: Theorem 1 with 30% finite-size headroom.
m = int(round(1.3 * m_mn_threshold(N, THETA)))
print(f"pooled design: m = {m} queries of Γ = {N // 2} samples each\n")

design = PoolingDesign.sample(N, m, RNG)
latency = LognormalLatency(median=PCR_MEDIAN_MIN * 60.0, sigma=0.1)

rows = []

# --- configuration 1: individual testing --------------------------------------
# 10,000 reactions; a 96-well robot runs them in ceil(10000/96) cycles.
individual_cycles = -(-N // 96)
individual_time_h = individual_cycles * PCR_MEDIAN_MIN / 60.0
rows.append(("individual (96-well)", N, individual_cycles, f"{individual_time_h:8.1f} h", "exact by definition"))

# --- configuration 2: fully parallel pooled design ----------------------------
lab_parallel = SimulatedLab(units=m, latency=latency)
report = lab_parallel.run(design, sigma, k, np.random.default_rng(1))
ok = bool(np.array_equal(report.sigma_hat, sigma))
rows.append(
    ("pooled, fully parallel", m, report.schedule.rounds, f"{report.query_makespan / 3600.0:8.1f} h", f"exact recovery: {ok}")
)

# --- configuration 3: pooled design on a 96-unit plate robot -------------------
lab_plate = SimulatedLab(units=96, latency=latency, policy="rounds")
report96 = lab_plate.run(design, sigma, k, np.random.default_rng(2))
ok96 = bool(np.array_equal(report96.sigma_hat, sigma))
rows.append(
    ("pooled, 96-well robot", m, report96.schedule.rounds, f"{report96.query_makespan / 3600.0:8.1f} h", f"exact recovery: {ok96}")
)

print(f"{'configuration':26s} {'reactions':>9s} {'cycles':>6s} {'wall-clock':>12s}   outcome")
print("-" * 84)
for name, reactions, cycles, wall, outcome in rows:
    print(f"{name:26s} {reactions:9d} {cycles:6d} {wall:>12s}   {outcome}")

saving = N / m
print(f"\npooling saves a factor {saving:.0f} in reactions; the fully parallel")
print("design finishes in a single PCR cycle — the paper's core motivation.")
assert ok and ok96
