"""Threshold group testing with an MN-style decoder (§VI future work).

The paper closes by naming *threshold group testing* — a query returns 1
iff its pool contains at least ``T`` one-entries — as the natural next
target for its techniques ("the tailor-made application remains a highly
non-trivial challenge").  This module is a first, honest cut at that
transfer, *not* a claim of optimality:

* the design stays the paper's random regular multigraph;
* the threshold defaults to the per-query median count ``T = ⌈k/2⌉``
  (maximising outcome entropy, the same principle that sets ``p = ln2/k``
  in binary group testing);
* the decoder ports the MN idea verbatim: score each entry by the number
  of *positive* distinct queries containing it, centred by its expected
  value, and keep the top ``k``.

One bit per query carries far less information than a count, so the
required ``m`` is substantially larger than MN's — the extension bench
measures the factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.design import PoolingDesign
from repro.core.signal import exact_recovery, overlap_fraction, random_signal, theta_to_k
from repro.parallel.sort import parallel_top_k
from repro.util.validation import check_binary_signal, check_positive_int

__all__ = ["ThresholdDesign", "threshold_mn_decode", "run_threshold_trial", "ThresholdTrialResult"]


@dataclass(frozen=True)
class ThresholdDesign:
    """A pooling design queried through the threshold channel."""

    design: PoolingDesign
    threshold: int

    def __post_init__(self) -> None:
        check_positive_int(self.threshold, "threshold")

    @classmethod
    def sample(cls, n: int, m: int, k: int, rng: np.random.Generator, threshold: "int | None" = None) -> "ThresholdDesign":
        """Random regular design with the entropy-maximising default ``T``."""
        k = check_positive_int(k, "k")
        t = threshold if threshold is not None else max(1, (k + 1) // 2)
        return cls(PoolingDesign.sample(n, m, rng), t)

    def query_results(self, sigma: np.ndarray) -> np.ndarray:
        """Binary outcomes ``1{count ≥ T}``."""
        sigma = check_binary_signal(sigma, length=self.design.n)
        return (self.design.query_results(sigma) >= self.threshold).astype(np.int8)


def threshold_mn_decode(tdesign: ThresholdDesign, b: np.ndarray, k: int) -> np.ndarray:
    """MN-style decoding from one-bit outcomes.

    Score: (# positive distinct queries containing i) − Δ*_i · (positive
    rate); exactly the Ψ-centring of Algorithm 1 with ``y`` replaced by the
    indicator outcomes and the global positive rate as the per-query mean.
    """
    k = check_positive_int(k, "k")
    design = tdesign.design
    b = np.asarray(b, dtype=np.int64)
    if b.shape != (design.m,):
        raise ValueError(f"b must have length m={design.m}")
    if design.m == 0:
        raise ValueError("empty design")
    psi_pos = design.psi(b)  # reuses distinct-membership accumulation
    dstar = design.dstar()
    rate = float(b.mean())
    scores = psi_pos.astype(np.float64) - dstar.astype(np.float64) * rate
    top = parallel_top_k(scores, k, blocks=1)
    sigma_hat = np.zeros(design.n, dtype=np.int8)
    sigma_hat[top] = 1
    return sigma_hat


@dataclass(frozen=True)
class ThresholdTrialResult:
    """Outcome of one threshold-GT trial."""

    n: int
    k: int
    m: int
    threshold: int
    success: bool
    overlap: float


def run_threshold_trial(
    n: int,
    m: int,
    *,
    theta: float,
    seed: int,
    threshold: "int | None" = None,
) -> ThresholdTrialResult:
    """One teacher–student round through the threshold channel."""
    n = check_positive_int(n, "n")
    check_positive_int(m, "m")
    k = theta_to_k(n, theta)
    seq = np.random.SeedSequence(entropy=seed, spawn_key=(787,))
    sig_rng, design_rng = (np.random.Generator(np.random.PCG64(s)) for s in seq.spawn(2))
    sigma = random_signal(n, k, sig_rng)
    tdesign = ThresholdDesign.sample(n, m, k, design_rng, threshold=threshold)
    b = tdesign.query_results(sigma)
    sigma_hat = threshold_mn_decode(tdesign, b, k)
    return ThresholdTrialResult(
        n=n,
        k=k,
        m=m,
        threshold=tdesign.threshold,
        success=exact_recovery(sigma, sigma_hat),
        overlap=overlap_fraction(sigma, sigma_hat),
    )
