"""Fleet tier: remote-warm serving vs cold compile, first-touch pull priced (tracked).

The fleet tier's economic claim is the store's, one hop further out: a
machine that has **never compiled a design** joins the fleet, pulls the
blob once through the verified read-through path, and from then on serves
every process at local-warm speed — with zero compiles anywhere on that
machine, ever.  Measured at paper-panel scale (``n = 10^4``) inside child
processes, exactly like ``bench_design_store.py``:

* **cold** — a fresh process compiles from the key and decodes;
* **pull** — a fresh process with an *empty* local store reads through
  the fleet tier (fetch → blob hash vs the signed manifest → unpack →
  per-file manifest at attach) and decodes: machine B's first touch;
* **remote-warm** — a fresh process on the pulled-to machine, fleet
  still attached, decodes off the warmed L2: machine B's steady state.

Acceptance: remote-warm >= 3x cold (the local-warm bar is 5x; the fleet
hit path must add nothing on top of a plain L2 attach), bit-identical
supports everywhere, and zero compiles on machine B across every child.
The first touch is *priced, not asserted*: the pull moves and verifies
~48MB of blob (one copy, two hash passes, one install write), which is
I/O-bound and costs a few cold compiles at this artifact size — the
recorded ``pull_x`` tracks that ratio across PRs, and the tier earns it
back on every subsequent process.  Fleet counters ride along in the JSON
payload so hit/corruption rates are tracked across PRs.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.core.signal import random_signals
from repro.designs import DesignKey, DesignStore, LocalDirRemote, compile_from_key

N = 10_000
M = 600
K = 16
SEED = 2022

KEY = DesignKey.for_stream(N, M, root_seed=SEED, batch_queries=256)

_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: The measured child.  ``pull`` starts from an empty local store root and
#: must read through the fleet tier; ``remote-warm`` reuses the pulled-to
#: root with the fleet still attached and must hit L2 without touching the
#: remote; ``cold`` compiles from key.  Everything after interpreter and
#: import startup is timed inside the child.
_CHILD = r"""
import json, sys, time
import numpy as np
from repro.core.mn import MNDecoder
from repro.designs import DesignKey, DesignStore, compile_from_key

mode, remote_root, store_root, y_path = sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4]
n, m, k, seed = (int(a) for a in sys.argv[5:9])
key = DesignKey.for_stream(n, m, root_seed=seed, batch_queries=256)
y = np.load(y_path)
t0 = time.perf_counter()
if mode == "cold":
    compiled = compile_from_key(key)
else:
    store = DesignStore(store_root, remote=remote_root, remote_mode="readonly")
    compiled = store.get(key)
    assert compiled is not None, f"store miss in {mode} child"
    if mode == "pull":
        assert store.stats.remote_hits == 1, "pull child did not read through"
    else:
        assert store.stats.remote_hits == 0 and store.stats.remote_misses == 0, "remote-warm child touched the remote"
sigma_hat = MNDecoder().compile(compiled).decode(y, k)
seconds = time.perf_counter() - t0
print(json.dumps({"seconds": seconds, "support": np.flatnonzero(sigma_hat).tolist()}))
"""


def _run_child(mode: str, remote_root: Path, store_root: Path, y_path: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(remote_root), str(store_root), str(y_path), str(N), str(M), str(K), str(SEED)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


class TestRemoteWarmDecode:
    def test_remote_warm_serving_beats_cold_compile(self, benchmark, repro_seed, tmp_path):
        remote_root = tmp_path / "remote"
        publisher = DesignStore(tmp_path / "publisher", remote=LocalDirRemote(remote_root))
        publisher.get_or_compile(KEY, lambda: compile_from_key(KEY))  # machine A: compile + write-through

        y_path = tmp_path / "y.npy"
        compiled = compile_from_key(KEY)
        np.save(y_path, compiled.query_results(random_signals(N, K, 1, np.random.default_rng(7)))[0])

        rounds = 3
        machine_b = tmp_path / "machine-b"
        cold = [_run_child("cold", remote_root, tmp_path / f"unused-{i}", y_path) for i in range(rounds)]
        # First touch: every pull round reads through into a fresh root; the
        # first one warms machine B's store for the steady-state rounds.
        pull = [_run_child("pull", remote_root, machine_b if i == 0 else tmp_path / f"scratch-{i}", y_path) for i in range(rounds)]
        warm = [_run_child("remote-warm", remote_root, machine_b, y_path) for _ in range(rounds)]
        cold_s = float(np.median([r["seconds"] for r in cold]))
        pull_s = float(np.median([r["seconds"] for r in pull]))
        warm_s = float(np.median([r["seconds"] for r in warm]))
        speedup = cold_s / warm_s

        # The tracked record: one full remote-warm child (interpreter
        # startup included — the honest fleet-machine serving cost).
        benchmark.pedantic(lambda: _run_child("remote-warm", remote_root, machine_b, y_path), rounds=1, iterations=1)
        benchmark.extra_info.update(
            {
                "n": N,
                "m": M,
                "k": K,
                "backend": "subprocess",
                "remote": "local-dir",
                "cold_s": round(cold_s, 5),
                "pull_s": round(pull_s, 5),
                "remote_warm_s": round(warm_s, 5),
                "speedup_x": round(speedup, 2),
                "pull_x": round(pull_s / cold_s, 2),
                "publisher_stats": dataclasses.asdict(publisher.stats),
                "publisher_cumulative": publisher.persistent_stats(),
                "machine_b_cumulative": DesignStore(machine_b).persistent_stats(),
            }
        )
        print(
            f"\nfleet: cold compile+decode {cold_s * 1e3:.1f}ms vs remote-warm serving {warm_s * 1e3:.1f}ms -> {speedup:.1f}x "
            f"(first-touch pull {pull_s * 1e3:.1f}ms = {pull_s / cold_s:.1f}x cold)"
        )

        # Bit-identical supports across every child: cold, pull, remote-warm.
        supports = {tuple(r["support"]) for r in cold + pull + warm}
        assert len(supports) == 1
        # The fleet PR's acceptance contract at n = 10^4: a remote-warmed
        # machine serves >= 3x faster than a cold compile, fleet attached.
        assert speedup >= 3.0
        # Exactly one compile and one remote publish ever happened, on the
        # publisher; machine B read through once and never compiled or
        # published anything (its cumulative counters prove it).
        assert publisher.persistent_stats()["publishes"] == 1
        assert publisher.persistent_stats()["remote_publishes"] == 1
        b_stats = DesignStore(machine_b).persistent_stats()
        assert b_stats["publishes"] == 0
        assert b_stats["remote_hits"] == 1
