"""Extensions beyond the paper's core results (§VI "open problems").

* noisy additive queries grew into the first-class :mod:`repro.noise`
  subsystem; :mod:`repro.extensions.noise` remains as a deprecated
  re-export shim (imports warn, behavior is bit-identical).
* :mod:`repro.extensions.threshold_gt` — the threshold-group-testing
  variant the paper names as future work: a query reports only whether its
  count exceeds a threshold ``T``; we port the MN scoring idea to it.
* :mod:`repro.extensions.adaptive` — a round-based scheme for the
  partially-parallel setting (``L`` units): keep issuing rounds of ``L``
  queries until the decoded signal explains every observation, trading
  rounds for queries.

These are clearly-labelled *extensions*: useful, tested, but not claims of
the paper.
"""

# Imported from the first-class subsystem, not the deprecated shim, so
# `import repro.extensions` stays warning-free.
from repro.noise.models import NoiseModel, GaussianNoise, DropoutNoise
from repro.noise.trial import run_noisy_mn_trial
from repro.extensions.threshold_gt import ThresholdDesign, threshold_mn_decode, run_threshold_trial
from repro.extensions.adaptive import adaptive_reconstruct, AdaptiveResult

__all__ = [
    "NoiseModel",
    "GaussianNoise",
    "DropoutNoise",
    "run_noisy_mn_trial",
    "ThresholdDesign",
    "threshold_mn_decode",
    "run_threshold_trial",
    "adaptive_reconstruct",
    "AdaptiveResult",
]
