"""End-to-end serve tests: real subprocess, real sockets, real signals.

Boots ``python -m repro.cli serve`` the way a supervisor would and drives
it with the bundled :class:`ServeClient`: ≥32 concurrent requests across
two design keys, every response checked bit-identical against the offline
``mn_reconstruct`` on the same ``(design_key, y, k)``, then a SIGTERM
drain that must exit 0.  The CI ``serve-smoke`` step runs this file.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.core.mn import mn_reconstruct
from repro.core.signal import random_signal
from repro.designs import DesignKey, compile_from_key
from repro.serve import ServeClient

KEY_A = DesignKey.for_stream(150, 40, root_seed=21)
KEY_B = DesignKey.for_stream(200, 50, root_seed=22)


def make_cases(key, k, count, seed0):
    compiled = compile_from_key(key)
    cases = []
    for i in range(count):
        sigma = random_signal(key.n, k, np.random.default_rng(seed0 + i))
        y = compiled.query_results(sigma)
        offline = np.flatnonzero(mn_reconstruct(compiled.design, y, k)).tolist()
        cases.append((key, y, k, offline))
    return cases


def spawn_server(*extra_args, env_extra=None):
    env = dict(os.environ, PYTHONPATH="src", **(env_extra or {}))
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *extra_args],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )


def read_banner(proc):
    """Parse ``serving on host:port`` from the server's first stdout line."""
    banner = proc.stdout.readline().strip()
    assert banner.startswith("serving on "), banner
    host, port = banner.rsplit(" ", 1)[1].rsplit(":", 1)
    return host, int(port)


def finish(proc, expect_code=0, timeout=20):
    try:
        code = proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:  # pragma: no cover - diagnostic path
        proc.kill()
        pytest.fail(f"server did not exit within {timeout}s; stderr: {proc.stderr.read()}")
    stderr = proc.stderr.read()
    assert code == expect_code, f"exit code {code}, stderr: {stderr}"
    return stderr


class TestTcpEndToEnd:
    def test_concurrent_load_bit_identity_then_sigterm_drain(self):
        proc = spawn_server("--port", "0", "--batch-window-ms", "2")
        try:
            host, port = read_banner(proc)
            cases = make_cases(KEY_A, 5, 16, seed0=1000) + make_cases(KEY_B, 7, 16, seed0=2000)
            assert len(cases) >= 32

            async def drive():
                clients = [await ServeClient.connect(host, port) for _ in range(4)]
                try:
                    responses = await asyncio.gather(
                        *[
                            clients[i % len(clients)].decode(key, y, k, request_id=i)
                            for i, (key, y, k, _) in enumerate(cases)
                        ]
                    )
                finally:
                    for client in clients:
                        await client.close()
                return responses

            responses = asyncio.run(drive())
            for i, (response, (_, _, _, offline)) in enumerate(zip(responses, cases)):
                assert response["ok"], response
                assert response["request_id"] == i
                assert response["support"] == offline  # bit-identical to offline reconstruct

            proc.send_signal(signal.SIGTERM)
            stderr = finish(proc, expect_code=0)
            assert "drained:" in stderr
            assert f"{len(cases)} requests" in stderr
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on assertion failure
                proc.kill()
                proc.wait()

    def test_malformed_lines_answered_without_crash(self):
        proc = spawn_server("--port", "0", "--batch-window-ms", "1")
        try:
            host, port = read_banner(proc)

            async def drive():
                async with await ServeClient.connect(host, port) as client:
                    await client.send_raw("not json at all")
                    unparseable = await client.next_unmatched()
                    bad_key = await client.request({"design_key": {"nope": 1}, "y": [0], "k": 1}, request_id="bk")
                    (key, y, k, offline) = make_cases(KEY_A, 4, 1, seed0=3000)[0]
                    good = await client.decode(key, y, k, request_id="ok")
                    return unparseable, bad_key, good, offline

            unparseable, bad_key, good, offline = asyncio.run(drive())
            assert unparseable["request_id"] is None
            assert unparseable["error"]["code"] == "bad_request"
            assert (bad_key["request_id"], bad_key["error"]["code"]) == ("bk", "bad_key")
            assert good["ok"] and good["support"] == offline  # server survived the garbage
            proc.send_signal(signal.SIGTERM)
            finish(proc, expect_code=0)
        finally:
            if proc.poll() is None:  # pragma: no cover
                proc.kill()
                proc.wait()


class TestMultiDecoderEndToEnd:
    def test_one_process_serves_mn_omp_and_comp(self):
        """The ``decoder`` request field selects the family, per request."""
        from repro.designs import make_decoder

        proc = spawn_server("--port", "0", "--batch-window-ms", "1")
        try:
            host, port = read_banner(proc)
            compiled = compile_from_key(KEY_A)
            sigma = random_signal(KEY_A.n, 4, np.random.default_rng(5000))
            y = compiled.query_results(sigma)
            offline = {
                name: np.flatnonzero(make_decoder(name).compile(compiled).decode(y, 4)).tolist()
                for name in ("mn", "omp", "comp")
            }

            async def drive():
                async with await ServeClient.connect(host, port) as client:
                    named = await asyncio.gather(
                        *[client.decode(KEY_A, y, 4, decoder=name, request_id=name) for name in offline]
                    )
                    default = await client.decode(KEY_A, y, 4, request_id="default")
                    bad = await client.decode(KEY_A, y, 4, decoder="martian", request_id="bad")
                    return named, default, bad

            named, default, bad = asyncio.run(drive())
            for response, (name, expected) in zip(named, offline.items()):
                assert response["ok"], response
                assert response["decoder"] == name  # the response echoes the family
                assert response["support"] == expected  # identical to the offline decode
            # An absent field serves the configured default (mn) — and says so.
            assert default["ok"] and default["decoder"] == "mn"
            assert default["support"] == offline["mn"]
            assert not bad["ok"]
            assert bad["error"]["code"] == "bad_request"
            assert "martian" in bad["error"]["message"]

            proc.send_signal(signal.SIGTERM)
            finish(proc, expect_code=0)
        finally:
            if proc.poll() is None:  # pragma: no cover
                proc.kill()
                proc.wait()

    def test_decoder_env_sets_the_default(self):
        env_override = {"REPRO_SERVE_DECODER": "comp"}
        proc = spawn_server("--port", "0", "--batch-window-ms", "1", env_extra=env_override)
        try:
            host, port = read_banner(proc)
            compiled = compile_from_key(KEY_A)
            sigma = random_signal(KEY_A.n, 3, np.random.default_rng(6000))
            y = compiled.query_results(sigma)

            async def drive():
                async with await ServeClient.connect(host, port) as client:
                    return await client.decode(KEY_A, y, 3, request_id="envd")

            response = asyncio.run(drive())
            assert response["ok"] and response["decoder"] == "comp"
            proc.send_signal(signal.SIGTERM)
            finish(proc, expect_code=0)
        finally:
            if proc.poll() is None:  # pragma: no cover
                proc.kill()
                proc.wait()


class TestStdioEndToEnd:
    def test_request_response_then_eof_drain(self):
        proc = spawn_server("--stdio", "--batch-window-ms", "1")
        try:
            (key, y, k, offline) = make_cases(KEY_B, 6, 1, seed0=4000)[0]
            request = {"request_id": "s1", "design_key": json.loads(key.to_json()), "y": y.tolist(), "k": k}
            proc.stdin.write(json.dumps(request) + "\n")
            proc.stdin.flush()
            response = json.loads(proc.stdout.readline())
            assert response["ok"] and response["request_id"] == "s1"
            assert response["support"] == offline
            proc.stdin.close()  # EOF is the pipe-world SIGTERM
            stderr = finish(proc, expect_code=0)
            assert "drained:" in stderr
        finally:
            if proc.poll() is None:  # pragma: no cover
                proc.kill()
                proc.wait()


class TestCliValidation:
    def test_invalid_knob_exits_2(self):
        proc = spawn_server("--stdio", "--max-batch", "0")
        stdout, stderr = proc.communicate(timeout=20)
        assert proc.returncode == 2, (stdout, stderr)
        assert "max_batch" in stderr
