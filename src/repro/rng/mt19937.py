"""A from-scratch implementation of the 64-bit Mersenne Twister (MT19937-64).

The paper (Section V) generates all random structures with the C++11
``std::mt19937_64`` engine.  To make our pooling designs statistically
faithful to the original simulator we re-implement the generator exactly as
specified by Matsumoto and Nishimura (``mt19937-64.c``, 2004), which is also
what ``std::mt19937_64`` implements.

Implementation notes
--------------------
* State is held in a ``uint64`` NumPy array and the whole 312-word twist is
  vectorised — a pure-Python word-at-a-time loop would be ~100x slower and
  would dominate design sampling.
* ``random_raw`` produces the canonical output sequence; with the reference
  seed 5489 the first output is ``14514284786278117030`` and the 10,000th is
  ``9981545732273789042`` (both checked in the test suite against the
  published reference output).
* Helpers convert the raw stream to uniform doubles in ``[0, 1)`` (53-bit,
  identical to the reference ``genrand64_real2``) and to bounded integers
  via unbiased rejection sampling (Lemire-style masking would bias;
  ``std::uniform_int_distribution`` is implementation-defined, so we expose
  our own well-defined contract instead).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MT19937_64"]

_NN = 312
_MM = 156
_MATRIX_A = np.uint64(0xB5026F5AA96619E9)
_UPPER_MASK = np.uint64(0xFFFFFFFF80000000)
_LOWER_MASK = np.uint64(0x7FFFFFFF)
_U64 = np.uint64
_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)

_SEED_MULT = np.uint64(6364136223846793005)
_INIT_MULT_1 = np.uint64(3935559000370003845)
_INIT_MULT_2 = np.uint64(2862933555777941757)


class MT19937_64:
    """64-bit Mersenne Twister with the reference initialisation.

    Parameters
    ----------
    seed:
        Either a non-negative integer (reference ``init_genrand64``) or a
        sequence of integers (reference ``init_by_array64``).  Defaults to
        the canonical seed ``5489``.

    Examples
    --------
    >>> g = MT19937_64(5489)
    >>> int(g.random_raw())
    14514284786278117030
    """

    def __init__(self, seed: "int | list[int] | tuple[int, ...]" = 5489):
        self._mt = np.zeros(_NN, dtype=np.uint64)
        self._mti = _NN  # force twist on first draw
        if isinstance(seed, (list, tuple)):
            self._init_by_array([int(s) & 0xFFFFFFFFFFFFFFFF for s in seed])
        elif isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
            if seed < 0:
                raise ValueError("seed must be non-negative")
            self._init_genrand(int(seed) & 0xFFFFFFFFFFFFFFFF)
        else:
            raise TypeError(f"seed must be an int or a sequence of ints, got {type(seed).__name__}")

    # -- reference initialisation ------------------------------------------------

    def _init_genrand(self, seed: int) -> None:
        mt = self._mt
        with np.errstate(over="ignore"):
            mt[0] = _U64(seed)
            for i in range(1, _NN):
                prev = mt[i - 1]
                mt[i] = _SEED_MULT * (prev ^ (prev >> _U64(62))) + _U64(i)
        self._mti = _NN

    def _init_by_array(self, key: "list[int]") -> None:
        if not key:
            raise ValueError("seed sequence must be non-empty")
        self._init_genrand(19650218)
        mt = self._mt
        i, j = 1, 0
        k = max(_NN, len(key))
        with np.errstate(over="ignore"):
            for _ in range(k):
                prev = mt[i - 1]
                mt[i] = (mt[i] ^ ((prev ^ (prev >> _U64(62))) * _INIT_MULT_1)) + _U64(key[j]) + _U64(j)
                i += 1
                j += 1
                if i >= _NN:
                    mt[0] = mt[_NN - 1]
                    i = 1
                if j >= len(key):
                    j = 0
            for _ in range(_NN - 1):
                prev = mt[i - 1]
                mt[i] = (mt[i] ^ ((prev ^ (prev >> _U64(62))) * _INIT_MULT_2)) - _U64(i)
                i += 1
                if i >= _NN:
                    mt[0] = mt[_NN - 1]
                    i = 1
            mt[0] = _U64(1) << _U64(63)
        self._mti = _NN

    # -- core twist ----------------------------------------------------------------

    def _twist(self) -> None:
        # The reference loop updates the state in place, so words at index
        # >= NN-MM read *already twisted* values.  We replicate that with
        # three segments whose reads only touch previously finished words.
        mt = self._mt

        def _xa(seg_cur: np.ndarray, seg_next: np.ndarray) -> np.ndarray:
            x = (seg_cur & _UPPER_MASK) | (seg_next & _LOWER_MASK)
            xa = x >> _U64(1)
            return np.where((x & _U64(1)).astype(bool), xa ^ _MATRIX_A, xa)

        # Segment 1: i in [0, NN-MM): mt[i+MM] still holds old values.
        mt[: _NN - _MM] = mt[_MM:] ^ _xa(mt[: _NN - _MM], mt[1 : _NN - _MM + 1])
        # Segment 2: i in [NN-MM, NN-1): mt[i+MM-NN] already twisted above.
        mt[_NN - _MM : _NN - 1] = mt[: _MM - 1] ^ _xa(
            mt[_NN - _MM : _NN - 1], mt[_NN - _MM + 1 : _NN]
        )
        # Segment 3: i = NN-1 wraps to the freshly twisted mt[0].
        mt[_NN - 1 :] = mt[_MM - 1 : _MM] ^ _xa(mt[_NN - 1 :], mt[:1])
        self._mti = 0

    @staticmethod
    def _temper(x: np.ndarray) -> np.ndarray:
        x = x ^ ((x >> _U64(29)) & _U64(0x5555555555555555))
        x = x ^ ((x << _U64(17)) & _U64(0x71D67FFFEDA60000))
        x = x ^ ((x << _U64(37)) & _U64(0xFFF7EEE000000000))
        x = x ^ (x >> _U64(43))
        return x

    # -- draws -----------------------------------------------------------------------

    def random_raw(self, size: "int | None" = None) -> "np.uint64 | np.ndarray":
        """Draw raw 64-bit words from the canonical output sequence.

        With ``size=None`` a single ``numpy.uint64`` scalar is returned,
        otherwise an array of that length.
        """
        if size is None:
            return self.random_raw(1)[0]
        if size < 0:
            raise ValueError("size must be non-negative")
        out = np.empty(size, dtype=np.uint64)
        filled = 0
        while filled < size:
            if self._mti >= _NN:
                self._twist()
            take = min(size - filled, _NN - self._mti)
            out[filled : filled + take] = self._mt[self._mti : self._mti + take]
            self._mti += take
            filled += take
        return self._temper(out)

    def random(self, size: "int | None" = None) -> "float | np.ndarray":
        """Uniform doubles in ``[0, 1)`` with 53-bit resolution.

        Matches the reference ``genrand64_real2``: ``(x >> 11) / 2^53``.
        """
        raw = self.random_raw(size if size is not None else 1)
        vals = (raw >> _U64(11)).astype(np.float64) * (1.0 / 9007199254740992.0)
        if size is None:
            return float(vals[0])
        return vals

    def integers(self, low: int, high: int, size: "int | None" = None) -> "int | np.ndarray":
        """Unbiased integers in ``[low, high)`` via rejection sampling.

        The rejection loop rarely iterates more than once (the acceptance
        probability is ``>= 1/2`` for any range).
        """
        if high <= low:
            raise ValueError("require high > low")
        span = int(high) - int(low)
        scalar = size is None
        count = 1 if scalar else int(size)
        if count < 0:
            raise ValueError("size must be non-negative")
        # Largest multiple of span that fits in 2^64 → acceptance threshold.
        limit = (1 << 64) - ((1 << 64) % span)
        out = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            need = count - filled
            raw = self.random_raw(need + (need >> 3) + 1).astype(object)
            accepted = [int(r) % span for r in raw if int(r) < limit]
            take = min(len(accepted), need)
            out[filled : filled + take] = np.asarray(accepted[:take], dtype=np.int64)
            filled += take
        out += low
        if scalar:
            return int(out[0])
        return out

    def shuffle(self, arr: np.ndarray) -> None:
        """In-place Fisher–Yates shuffle driven by this generator."""
        n = len(arr)
        for i in range(n - 1, 0, -1):
            j = self.integers(0, i + 1)
            arr[i], arr[j] = arr[j], arr[i]

    # -- state management -----------------------------------------------------------

    def getstate(self) -> "tuple[np.ndarray, int]":
        """Return ``(state_vector_copy, index)`` — enough to clone the stream."""
        return self._mt.copy(), self._mti

    def setstate(self, state: "tuple[np.ndarray, int]") -> None:
        """Restore a state captured by :meth:`getstate`."""
        mt, mti = state
        mt = np.asarray(mt, dtype=np.uint64)
        if mt.shape != (_NN,):
            raise ValueError(f"state vector must have shape ({_NN},)")
        if not (0 <= mti <= _NN):
            raise ValueError("state index out of range")
        self._mt = mt.copy()
        self._mti = int(mti)
