"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_results(tmp_path, monkeypatch):
    monkeypatch.setenv("POOLED_REPRO_RESULTS", str(tmp_path / "results"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig2_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.trials == 10

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "[2, 2, 3, 1, 1]" in out

    def test_thresh(self, capsys):
        assert main(["thresh", "--n", "1000"]) == 0
        out = capsys.readouterr().out
        assert "MN (Thm1)" in out

    def test_it_small(self, capsys):
        assert main(["it", "--n", "20", "--k", "2", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "P[unique]" in out

    def test_fig3_small(self, capsys):
        rc = main(["fig3", "--n", "200", "--thetas", "0.3", "--points", "3", "--trials", "3", "--workers", "1"])
        assert rc == 0
        assert "success" in capsys.readouterr().out

    def test_fig3_batched_engine(self, capsys):
        rc = main(
            ["fig3", "--n", "200", "--thetas", "0.3", "--points", "3", "--trials", "3", "--workers", "1", "--engine", "batched"]
        )
        assert rc == 0
        assert "success" in capsys.readouterr().out

    def test_fig4_small(self, capsys):
        rc = main(["fig4", "--n", "200", "--thetas", "0.3", "--points", "3", "--trials", "3", "--workers", "1"])
        assert rc == 0
        assert "overlap" in capsys.readouterr().out

    def test_fig2_small(self, capsys):
        rc = main(["fig2", "--ns", "100", "200", "--thetas", "0.3", "--trials", "2", "--workers", "1"])
        assert rc == 0
        assert "m_required" in capsys.readouterr().out

    def test_claims_small(self, capsys):
        rc = main(["claims", "--trials", "3", "--workers", "1"])
        assert rc == 0
        assert "sec6_99pct_overlap" in capsys.readouterr().out


class TestDesignCommands:
    def test_design_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["design"])

    def test_build_info_decode_roundtrip(self, tmp_path, capsys):
        import numpy as np

        from repro.core.serialization import load_compiled_design, save_design
        from repro.core.signal import random_signal

        out = tmp_path / "deployed"
        assert main(["design", "build", "--n", "200", "--m", "150", "--seed", "9", "--out", str(out)]) == 0
        built = capsys.readouterr().out
        assert "compiled design written" in built and "stream" in built

        assert main(["design", "info", str(out) + ".npz"]) == 0
        info = capsys.readouterr().out
        assert "batch_queries=256" in info and "psi block" in info

        # Attach observed results to the artifact, then serve a decode.
        compiled, _ = load_compiled_design(str(out) + ".npz")
        sigma = random_signal(200, 3, np.random.default_rng(3))
        served = tmp_path / "observed"
        save_design(served, compiled, y=compiled.query_results(sigma))
        assert main(["design", "decode", str(served) + ".npz", "--k", "3"]) == 0
        decoded = capsys.readouterr().out
        support = " ".join(str(i) for i in np.flatnonzero(sigma))
        assert support in decoded

    def test_decode_from_y_file(self, tmp_path, capsys):
        import numpy as np

        from repro.core.serialization import load_compiled_design

        out = tmp_path / "d"
        assert main(["design", "build", "--n", "100", "--m", "80", "--out", str(out)]) == 0
        capsys.readouterr()
        compiled, _ = load_compiled_design(str(out) + ".npz")
        sigma = np.zeros(100, dtype=np.int8)
        sigma[[5, 17]] = 1
        y_file = tmp_path / "y.txt"
        y_file.write_text("\n".join(str(int(v)) for v in compiled.query_results(sigma)))
        assert main(["design", "decode", str(out) + ".npz", "--k", "2", "--y-file", str(y_file)]) == 0
        assert "5 17" in capsys.readouterr().out

    def test_decode_malformed_y_file_errors(self, tmp_path, capsys):
        out = tmp_path / "d"
        assert main(["design", "build", "--n", "50", "--m", "30", "--out", str(out)]) == 0
        capsys.readouterr()
        bad = tmp_path / "y.txt"
        bad.write_text("3.5 not-a-count")
        assert main(["design", "decode", str(out) + ".npz", "--k", "2", "--y-file", str(bad)]) == 2
        assert "could not parse" in capsys.readouterr().err

    def test_decode_without_results_errors(self, tmp_path, capsys):
        out = tmp_path / "empty"
        assert main(["design", "build", "--n", "50", "--m", "30", "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["design", "decode", str(out) + ".npz", "--k", "2"]) == 2
        assert "--y-file" in capsys.readouterr().err
