"""Baseline decoders from the paper's related-work section (§I-B, §I-D).

The paper positions the MN algorithm against four families:

* **Compressed sensing**: ℓ1 *basis pursuit* (Donoho & Tanner; Foucart &
  Rauhut) — :mod:`repro.baselines.lp`, an LP over the pooled-count matrix.
* **Greedy pursuit**: *orthogonal matching pursuit* (Pati et al.) —
  :mod:`repro.baselines.omp`, discrete-aware variant.
* **Message passing**: *AMP* (Alaoui et al.) — :mod:`repro.baselines.amp`,
  Bayes-optimal scalar denoiser for the Bernoulli prior.
* **Binary group testing** (OR queries; Coja-Oghlan et al.) —
  :mod:`repro.baselines.bin_gt`, COMP and DD decoders on a Bernoulli
  design; the §I-D comparator that beats additive-query algorithms for
  small θ despite discarding information.

Karimi et al.'s sparse-graph-code decoders are represented by their rate
constants (see :func:`repro.core.thresholds.karimi_rate`): the paper itself
compares against those *rates*, and the decoders target bespoke ensembles
incompatible with the random regular design reproduced here.
"""

from repro.baselines.lp import basis_pursuit_decode
from repro.baselines.omp import omp_decode
from repro.baselines.amp import amp_decode, AMPResult
from repro.baselines.bin_gt import (
    BernoulliORDesign,
    comp_decode,
    dd_decode,
    run_gt_trial,
)
from repro.baselines.centring import (
    centre_matrix,
    centre_observations,
    check_observations,
    column_mean,
    column_norms,
    pool_gamma,
    pool_variance,
)
from repro.baselines.compiled import (
    AMPDecoder,
    COMPDecoder,
    CompiledAMPDecoder,
    CompiledGTDecoder,
    CompiledLPDecoder,
    CompiledOMPDecoder,
    DDDecoder,
    LPDecoder,
    OMPDecoder,
)
from repro.baselines.sequential import (
    SequentialResult,
    adaptive_binary_splitting,
    oracle_from_signal,
)

__all__ = [
    "basis_pursuit_decode",
    "omp_decode",
    "amp_decode",
    "AMPResult",
    "LPDecoder",
    "OMPDecoder",
    "AMPDecoder",
    "COMPDecoder",
    "DDDecoder",
    "CompiledLPDecoder",
    "CompiledOMPDecoder",
    "CompiledAMPDecoder",
    "CompiledGTDecoder",
    "pool_gamma",
    "column_mean",
    "pool_variance",
    "centre_matrix",
    "centre_observations",
    "column_norms",
    "check_observations",
    "BernoulliORDesign",
    "comp_decode",
    "dd_decode",
    "run_gt_trial",
    "SequentialResult",
    "adaptive_binary_splitting",
    "oracle_from_signal",
]
