"""Shared benchmark configuration.

Benchmarks double as the *reproduction harness*: each file regenerates one
figure/table/claim of the paper (see DESIGN.md's experiment index), prints
the measured rows, and asserts the paper's qualitative *shape* (who wins,
where the transition sits, what dominates what).  Run with::

    pytest benchmarks/ --benchmark-only

Scale: defaults are laptop-scale (minutes, not the paper's CPU-days); every
driver accepts paper-scale parameters through its Python API.
"""

import os

import pytest


def _worker_count() -> int:
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover
        return max(1, os.cpu_count() or 1)


@pytest.fixture(scope="session")
def workers() -> int:
    """Worker processes available to the sweep drivers."""
    return _worker_count()


@pytest.fixture(scope="session")
def repro_seed() -> int:
    """Root seed for every benchmark (override via POOLED_REPRO_SEED)."""
    return int(os.environ.get("POOLED_REPRO_SEED", "2022"))


def emit(title: str, body: str) -> None:
    """Print a labelled block that survives pytest's capture with -s or on failure."""
    print(f"\n===== {title} =====")
    print(body)


@pytest.fixture
def check(benchmark):
    """Run a shape-assertion block through the benchmark fixture.

    The suite is executed with ``--benchmark-only``, which skips any test
    not using the ``benchmark`` fixture.  Shape checks consume data from
    module-scoped sweep fixtures (where the real cost lives); wrapping the
    assertion body in a 1-round pedantic run keeps them executing under
    that flag.  Use as a decorator::

        def test_shape(sweep, check):
            @check
            def _():
                assert sweep[0].success.mean < 0.5
    """

    def runner(fn):
        benchmark.pedantic(fn, rounds=1, iterations=1)
        return fn

    return runner
