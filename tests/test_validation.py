"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_array_1d,
    check_binary_signal,
    check_in_open_unit_interval,
    check_nonneg_int,
    check_positive_int,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts_python_int(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(7), "x") == 7
        assert isinstance(check_positive_int(np.int64(7), "x"), int)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be >= 1"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-3, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float_even_integral(self):
        with pytest.raises(TypeError):
            check_positive_int(4.0, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive_int("4", "x")


class TestCheckNonnegInt:
    def test_accepts_zero(self):
        assert check_nonneg_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonneg_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_nonneg_int(False, "x")


class TestOpenUnitInterval:
    @pytest.mark.parametrize("v", [0.1, 0.5, 0.999])
    def test_accepts_interior(self, v):
        assert check_in_open_unit_interval(v, "theta") == v

    @pytest.mark.parametrize("v", [0.0, 1.0, -0.2, 1.5])
    def test_rejects_boundary_and_outside(self, v):
        with pytest.raises(ValueError):
            check_in_open_unit_interval(v, "theta")

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_in_open_unit_interval("0.3", "theta")


class TestCheckProbability:
    def test_accepts_endpoints(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability(1.01, "p")


class TestCheckArray1d:
    def test_coerces_list(self):
        out = check_array_1d([1, 2, 3], "a")
        assert isinstance(out, np.ndarray)
        assert out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            check_array_1d(np.zeros((2, 2)), "a")

    def test_length_enforced(self):
        with pytest.raises(ValueError, match="length 5"):
            check_array_1d([1, 2], "a", length=5)

    def test_dtype_conversion(self):
        out = check_array_1d([1, 2], "a", dtype=np.float64)
        assert out.dtype == np.float64


class TestCheckBinarySignal:
    def test_accepts_binary(self):
        out = check_binary_signal([0, 1, 1, 0])
        assert out.dtype == np.int8

    def test_rejects_twos(self):
        with pytest.raises(ValueError, match="only 0/1"):
            check_binary_signal([0, 2])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_binary_signal([-1, 0])

    def test_empty_allowed(self):
        assert check_binary_signal([]).size == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            check_binary_signal([0, 1], length=3)
