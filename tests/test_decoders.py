"""Parity suite for the compiled baseline decoders.

The contract (module docstring of :mod:`repro.baselines.compiled`):

* single-signal ``decode`` replays the legacy op sequence — **bit-identical**
  to ``basis_pursuit_decode`` / ``omp_decode`` / ``amp_decode`` /
  ``comp_decode`` / ``dd_decode`` on every design;
* ``decode_batch`` rows are bit-identical for the integer-exact COMP/DD
  decoders (they route through the kernel-dispatched ``Ψ`` seam) and
  support-identical (same thresholded output) for the float LP/OMP/AMP
  decoders, whose GEMMs round differently from per-signal matvecs;
* results are independent of how the artifact was obtained — direct
  compile, cache/store read-through, or shared-memory attach.

Run under ``REPRO_KERNEL=dense|dense32|legacy`` in CI: the float paths
are float64-pinned (kernel-independent by construction) and the GT paths
go through ``compiled.psi`` (kernel-dispatched, integer-exact).
"""

import numpy as np
import pytest

from repro.baselines import (
    BernoulliORDesign,
    amp_decode,
    basis_pursuit_decode,
    comp_decode,
    dd_decode,
    omp_decode,
)
from repro.core.design import PoolingDesign
from repro.core.signal import random_signal, random_signals
from repro.designs import (
    CompiledDecoder,
    Decoder,
    DesignCache,
    DesignKey,
    DesignStore,
    available_decoders,
    compile_design,
    compile_from_key,
    make_decoder,
)
from repro.designs.sharing import SharedCompiledDesign, attach_compiled

N, M, K = 300, 120, 4
BATCH = 5

FLOAT_DECODERS = ("lp", "omp", "amp")
GT_DECODERS = ("comp", "dd")


def _membership(design: PoolingDesign) -> np.ndarray:
    member = np.zeros((design.m, design.n), dtype=bool)
    rows = np.repeat(np.arange(design.m), np.diff(design.indptr))
    member[rows, design.entries] = True
    return member


def _legacy(name: str, design: PoolingDesign, y: np.ndarray, k: int) -> np.ndarray:
    if name == "lp":
        return basis_pursuit_decode(design, y, k)
    if name == "omp":
        return omp_decode(design, y, k)
    if name == "amp":
        return amp_decode(design, y, k).sigma_hat
    binary = (np.asarray(y) > 0).astype(np.int8)
    gt = BernoulliORDesign(_membership(design))
    return comp_decode(gt, binary) if name == "comp" else dd_decode(gt, binary)


@pytest.fixture(scope="module", params=["ragged", "gamma1"])
def instance(request):
    """One design family: naturally ragged pools, or degenerate Γ=1."""
    rng = np.random.default_rng(11 if request.param == "ragged" else 13)
    gamma = None if request.param == "ragged" else 1
    design = PoolingDesign.sample(N, M, rng, gamma=gamma)
    sigmas = random_signals(N, K, BATCH, rng)
    Y = design.query_results(sigmas)
    noisy = Y + rng.integers(-1, 2, size=Y.shape)
    return design, compile_design(design), Y, noisy


@pytest.mark.parametrize("name", FLOAT_DECODERS + GT_DECODERS)
class TestSingleSignalParity:
    def test_clean_bit_identical(self, name, instance):
        design, compiled, Y, _ = instance
        decoder = make_decoder(name).compile(compiled)
        for i in range(2):
            assert np.array_equal(decoder.decode(Y[i], K), _legacy(name, design, Y[i], K))

    def test_noisy_bit_identical(self, name, instance):
        """Corrupted counts: identical outputs — or the identical failure.

        LP's equality constraints can go infeasible under corruption; the
        compiled port must then fail exactly as the legacy call does.
        """
        design, compiled, _, noisy = instance
        decoder = make_decoder(name).compile(compiled)
        for i in range(2):
            try:
                expected = _legacy(name, design, noisy[i], K)
            except RuntimeError:
                with pytest.raises(RuntimeError, match="basis pursuit"):
                    decoder.decode(noisy[i], K)
                continue
            assert np.array_equal(decoder.decode(noisy[i], K), expected)


@pytest.mark.parametrize("name", GT_DECODERS)
class TestGTBatchParity:
    def test_batch_rows_bit_identical_to_legacy(self, name, instance):
        design, compiled, Y, noisy = instance
        decoder = make_decoder(name).compile(compiled)
        for observed in (Y, noisy):
            out = decoder.decode_batch(observed, K)
            assert out.shape == (BATCH, N)
            for i in range(BATCH):
                assert np.array_equal(out[i], _legacy(name, design, observed[i], K))

    def test_b1_batch_equals_decode(self, name, instance):
        _, compiled, Y, _ = instance
        decoder = make_decoder(name).compile(compiled)
        assert np.array_equal(decoder.decode_batch(Y[:1], K)[0], decoder.decode(Y[0], K))


def _skip_if_tie_degenerate(name: str, request) -> None:
    """Skip greedy/iterative batch-parity checks on the tie-degenerate Γ=1 design.

    Γ=1 at n/m = 300/120 leaves 200+ columns with zero pool coverage; their
    centred correlations tie *exactly*, and OMP's argmax tie-break (and AMP's
    threshold crossing) among them is not stable across GEMMs of different
    batch shapes vs per-signal matvecs (~5e-15 rounding).  Support parity is
    only meaningful where the landscape is non-degenerate; Γ=1 stays covered
    by the B=1 bit-identical tests (LP included — its per-row ``linprog``
    replays identical ops at any batch size, so it is never skipped).
    """
    if name in ("omp", "amp") and request.node.callspec.params["instance"] == "gamma1":
        pytest.skip(f"{name} tie-breaking is degenerate on zero-coverage Γ=1 columns")


@pytest.mark.parametrize("name", FLOAT_DECODERS)
class TestFloatBatchParity:
    def test_batch_rows_support_identical(self, name, instance, request):
        """GEMM-vs-matvec rounding may differ in bits; supports must not."""
        _skip_if_tie_degenerate(name, request)
        _, compiled, Y, noisy = instance
        decoder = make_decoder(name).compile(compiled)
        # Corrupted counts can make LP's equality constraints infeasible
        # (an error, covered above) — batch-parity it only on clean counts.
        for observed in (Y,) if name == "lp" else (Y, noisy):
            out = decoder.decode_batch(observed, K)
            assert out.shape == (BATCH, N)
            for i in range(BATCH):
                single = decoder.decode(observed[i], K)
                assert np.array_equal(np.flatnonzero(out[i]), np.flatnonzero(single))

    def test_b1_batch_equals_decode(self, name, instance):
        _, compiled, Y, _ = instance
        decoder = make_decoder(name).compile(compiled)
        out = decoder.decode_batch(Y[:1], K)[0]
        assert np.array_equal(np.flatnonzero(out), np.flatnonzero(decoder.decode(Y[0], K)))


@pytest.mark.parametrize("name", ("omp", "amp"))
def test_ragged_k_batch(name, instance, request):
    """Per-row weights: each row decodes exactly as a scalar-k call would."""
    _skip_if_tie_degenerate(name, request)
    _, compiled, Y, _ = instance
    decoder = make_decoder(name).compile(compiled)
    ks = np.array([K, K - 1, K, K + 1, K - 2], dtype=np.int64)
    out = decoder.decode_batch(Y, ks)
    for i, k in enumerate(ks):
        expected = decoder.decode_batch(Y[i : i + 1], int(k))[0]
        assert np.array_equal(np.flatnonzero(out[i]), np.flatnonzero(expected))


class TestArtifactPathIndependence:
    def test_cache_and_store_read_through(self, tmp_path):
        """Direct compile, cache hit, and store attach all decode identically."""
        key = DesignKey.for_stream(N, M, root_seed=5)
        compiled = compile_from_key(key)
        sigma = random_signal(N, K, np.random.default_rng(3))
        y = compiled.query_results(sigma)
        cache = DesignCache()
        store = DesignStore(tmp_path / "store")
        for name in ("omp", "amp", "comp", "dd"):
            base = make_decoder(name).compile(compiled)
            via_cache = make_decoder(name).compile(key, cache=cache)
            via_store = make_decoder(name).compile(key, store=store)
            expected = base.decode(y, K)
            assert np.array_equal(via_cache.decode(y, K), expected)
            assert np.array_equal(via_store.decode(y, K), expected)

    def test_sharedmem_attach(self):
        """Decoders against a shared-memory-attached artifact match the parent."""
        key = DesignKey.for_stream(N, M, root_seed=9)
        compiled = compile_from_key(key)
        sigma = random_signal(N, K, np.random.default_rng(4))
        y = compiled.query_results(sigma)
        worker_cache: dict = {}
        with SharedCompiledDesign.publish(compiled) as shared:
            attached = attach_compiled(shared.descriptor, worker_cache)
            for name in ("omp", "amp", "comp", "dd"):
                parent = make_decoder(name).compile(compiled).decode(y, K)
                worker = make_decoder(name).compile(attached).decode(y, K)
                assert np.array_equal(parent, worker)


class TestRegistry:
    def test_every_name_satisfies_the_protocols(self):
        compiled = compile_design(PoolingDesign.sample(40, 20, np.random.default_rng(0)))
        assert available_decoders()[0] == "mn"
        for name in available_decoders():
            decoder = make_decoder(name)
            assert isinstance(decoder, Decoder)
            assert isinstance(decoder.compile(compiled), CompiledDecoder)

    def test_unknown_name_lists_the_menu(self):
        with pytest.raises(ValueError, match="unknown decoder 'nope'.*mn"):
            make_decoder("nope")

    def test_registered_decoders_accept_blocks(self):
        for name in available_decoders():
            make_decoder(name, blocks=2)


class TestGuards:
    @pytest.fixture(scope="class")
    def small(self):
        design = PoolingDesign.sample(60, 30, np.random.default_rng(1))
        sigma = random_signal(60, 3, np.random.default_rng(2))
        return design, compile_design(design), design.query_results(sigma)

    @pytest.mark.parametrize("legacy", [basis_pursuit_decode, omp_decode, amp_decode])
    def test_legacy_rejects_nonfinite_y(self, legacy, small):
        design, _, y = small
        bad = y.astype(np.float64)
        bad[0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            legacy(design, bad, 3)

    @pytest.mark.parametrize("name", FLOAT_DECODERS)
    def test_compiled_rejects_nonfinite_y(self, name, small):
        _, compiled, y = small
        decoder = make_decoder(name).compile(compiled)
        bad = y.astype(np.float64)
        bad[-1] = np.inf
        with pytest.raises(ValueError, match="finite"):
            decoder.decode(bad, 3)
        batch = np.tile(y.astype(np.float64), (2, 1))
        batch[1, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            decoder.decode_batch(batch, 3)

    @pytest.mark.parametrize("legacy", [omp_decode, amp_decode])
    def test_legacy_rejects_k_zero(self, legacy, small):
        design, _, y = small
        with pytest.raises(ValueError):
            legacy(design, y, 0)

    @pytest.mark.parametrize("name", FLOAT_DECODERS)
    def test_compiled_rejects_k_zero(self, name, small):
        _, compiled, y = small
        decoder = make_decoder(name).compile(compiled)
        with pytest.raises(ValueError):
            decoder.decode(y, 0)
