"""pooled-repro — parallel reconstruction from pooled data.

A production-quality reproduction of Gebhard, Hahn-Klimroth, Kaaser &
Loick, *On the Parallel Reconstruction from Pooled Data* (IPDPS 2022,
arXiv:1905.01458): the Maximum Neighborhood greedy decoder, the
information-theoretic threshold machinery, the parallel substrates the
algorithm runs on, the related-work baselines, and the complete evaluation
harness regenerating every figure and in-text claim.

Quickstart
----------
>>> import numpy as np
>>> from repro import reconstruct
>>> sigma = np.zeros(1000, dtype=np.int8); sigma[[3, 141, 592]] = 1
>>> oracle = lambda pools: [int(sigma[p].sum()) for p in pools]
>>> report = reconstruct(1000, 200, oracle,   # k learned by calibration
...                      rng=np.random.default_rng(0))
>>> bool(np.array_equal(report.sigma_hat, sigma))
True

Batched reconstruction (the engine layer)
-----------------------------------------
One pooling design is signal-independent, so a whole batch of signals can
share it — :func:`reconstruct_batch` decodes ``B`` signals in one
vectorised pass, per-signal bit-identical to ``B`` independent
``reconstruct`` calls with matched seeds:

>>> from repro import reconstruct_batch, signals_oracle
>>> sigmas = np.zeros((4, 1000), dtype=np.int8)
>>> for b in range(4): sigmas[b, [b, 100 + b, 500 + b]] = 1
>>> batch = reconstruct_batch(1000, 200, signals_oracle(sigmas), 4,
...                           rng=np.random.default_rng(0))
>>> bool(np.array_equal(batch.sigma_hat, sigmas))
True

Batch-axis conventions: per-signal arrays (``sigma``, ``y``, ``psi``)
optionally grow a leading ``B`` axis; design-level arrays (``dstar``,
``delta``) never do.  Execution (process count, decomposition width,
streaming batch size) is configured once via a ``Backend``
(:class:`SerialBackend` or the fork+shared-memory
:class:`SharedMemBackend`) and threaded through every entry point as
``backend=``.

Noisy channels (the noise subsystem)
------------------------------------
Real assays return noisy counts.  Every oracle-facing entry point takes an
optional ``noise=`` :class:`NoiseModel` (plus ``repeats=`` for
repeat-query averaging); corruption streams are keyed per signal, so the
batched/single bit-identity guarantees survive the noisy channel:

>>> from repro import GaussianNoise
>>> noisy = reconstruct_batch(1000, 400, signals_oracle(sigmas), 4, k=3,
...                           rng=np.random.default_rng(0),
...                           noise=GaussianNoise(2.0), repeats=3)
>>> bool(np.array_equal(noisy.sigma_hat, sigmas))
True

Package map
-----------
``repro.core``        model, MN decoder, thresholds, exhaustive decoder
``repro.designs``     compiled-design lifecycle: compile, cache, serve
``repro.engine``      execution backends + batched multi-signal engine
``repro.kernels``     dispatchable hot kernels: dense blocks + BLAS vs legacy
``repro.noise``       noisy channels: models, keyed streams, robust decoding
``repro.rng``         MT19937-64 (paper parity) + deterministic substreams
``repro.parallel``    shared-memory worker pool, sort/matvec primitives
``repro.machine``     simulated lab: latency models, L-unit scheduling
``repro.baselines``   basis pursuit, OMP, AMP, binary group testing
``repro.experiments`` figure/claim regeneration drivers
``repro.extensions``  threshold queries, adaptive rounds (§VI); noise shim
"""

from repro.core import (
    GAMMA,
    HeapsLawProcess,
    KEstimate,
    MNDecoder,
    MNTrialResult,
    PoolingDesign,
    PrevalencePopulation,
    DesignStats,
    decode_with_estimated_k,
    estimate_k,
    load_compiled_design,
    load_design,
    save_design,
    exact_recovery,
    exhaustive_decode,
    finite_size_factor,
    hamming_distance,
    k_to_theta,
    m_counting_exact,
    m_counting_sequential,
    m_information_parallel,
    m_mn_threshold,
    mn_constant,
    mn_reconstruct,
    mn_scores,
    overlap_fraction,
    random_signal,
    random_signals,
    reconstruct,
    run_mn_trial,
    stream_design_stats,
    theta_to_k,
)
from repro.engine import (
    Backend,
    BatchReconstructionReport,
    SerialBackend,
    SharedMemBackend,
    reconstruct_batch,
    run_trial_grid,
    signals_oracle,
)
from repro.designs import (
    CompiledDesign,
    CompiledMNDecoder,
    DesignCache,
    DesignKey,
    DesignStore,
    compile_design,
    compile_from_key,
    resolve_design_store,
)
from repro.kernels import available_kernels
from repro.machine import SimulatedLab
from repro.noise import (
    DropoutNoise,
    GaussianNoise,
    NoiseModel,
    parse_noise_spec,
    robust_calibrate_k,
    threshold_decode,
)
from repro.parallel import WorkerPool

__version__ = "1.5.0"

__all__ = [
    "GAMMA",
    "HeapsLawProcess",
    "KEstimate",
    "MNDecoder",
    "MNTrialResult",
    "PoolingDesign",
    "PrevalencePopulation",
    "DesignStats",
    "decode_with_estimated_k",
    "estimate_k",
    "load_design",
    "load_compiled_design",
    "save_design",
    "CompiledDesign",
    "CompiledMNDecoder",
    "DesignCache",
    "DesignKey",
    "DesignStore",
    "compile_design",
    "compile_from_key",
    "resolve_design_store",
    "SimulatedLab",
    "WorkerPool",
    "available_kernels",
    "Backend",
    "SerialBackend",
    "SharedMemBackend",
    "BatchReconstructionReport",
    "reconstruct_batch",
    "run_trial_grid",
    "signals_oracle",
    "NoiseModel",
    "GaussianNoise",
    "DropoutNoise",
    "parse_noise_spec",
    "robust_calibrate_k",
    "threshold_decode",
    "random_signals",
    "exact_recovery",
    "exhaustive_decode",
    "finite_size_factor",
    "hamming_distance",
    "k_to_theta",
    "m_counting_exact",
    "m_counting_sequential",
    "m_information_parallel",
    "m_mn_threshold",
    "mn_constant",
    "mn_reconstruct",
    "mn_scores",
    "overlap_fraction",
    "random_signal",
    "reconstruct",
    "run_mn_trial",
    "stream_design_stats",
    "theta_to_k",
    "__version__",
]
