"""Tests for the worker pool, including failure injection."""

import os

import numpy as np
import pytest

from repro.parallel.pool import PoolError, WorkerPool, resolve_workers


def _square(payload, cache):
    return payload * payload


def _use_cache(payload, cache):
    cache["hits"] = cache.get("hits", 0) + 1
    return cache["hits"]


def _boom(payload, cache):
    if payload == 13:
        raise ValueError("unlucky payload")
    return payload


def _suicide(payload, cache):
    if payload == 1:
        os._exit(17)  # simulate a crashed worker
    import time

    time.sleep(0.05)
    return payload


class TestResolveWorkers:
    def test_none_means_all_cores(self):
        assert resolve_workers(None) >= 1

    def test_zero_means_all_cores(self):
        assert resolve_workers(0) == resolve_workers(None)

    def test_explicit(self):
        assert resolve_workers(3) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            resolve_workers(True)
        with pytest.raises(TypeError):
            resolve_workers(2.0)


class TestInlineMode:
    def test_single_worker_runs_inline(self):
        with WorkerPool(1) as pool:
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_inline_cache_persists(self):
        with WorkerPool(1) as pool:
            assert pool.map(_use_cache, [None]) == [1]
            assert pool.map(_use_cache, [None]) == [2]

    def test_empty_payloads(self):
        with WorkerPool(1) as pool:
            assert pool.map(_square, []) == []

    def test_inline_errors_propagate_directly(self):
        with WorkerPool(1) as pool:
            with pytest.raises(ValueError, match="unlucky"):
                pool.map(_boom, [13])


def _thread_policy(payload, cache):
    """What the worker actually runs under: (affinity set, BLAS threads)."""
    from repro.kernels.threads import detect_blas, get_blas_threads

    try:
        cores = sorted(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = None
    return cores, get_blas_threads() if detect_blas() is not None else None


class TestThreadGovernance:
    def test_inline_cap_is_scoped_to_map(self):
        from repro.kernels.threads import detect_blas, get_blas_threads

        before = get_blas_threads()
        with WorkerPool(1, blas_threads=1) as pool:
            (_, inside), = pool.map(_thread_policy, [None])
        if detect_blas() is not None:
            assert inside == 1
        assert get_blas_threads() == before  # parent's setting restored

    def test_workers_apply_cap_and_pinning(self):
        from repro.kernels.threads import detect_blas, worker_core_slices

        slices = worker_core_slices(2)
        with WorkerPool(2, blas_threads=1, pin_cores=slices) as pool:
            policies = pool.map(_thread_policy, [0, 1, 2, 3])
        allowed = {s for s in slices}
        for cores, blas in policies:
            if cores is not None:
                assert tuple(cores) in allowed
            if detect_blas() is not None:
                assert blas == 1

    def test_uncapped_pool_unchanged(self):
        with WorkerPool(2) as pool:
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert WorkerPool(1).blas_threads is None


class TestParallelMode:
    def test_results_in_submission_order(self):
        with WorkerPool(4) as pool:
            out = pool.map(_square, list(range(40)))
        assert out == [i * i for i in range(40)]

    def test_numpy_payloads_roundtrip(self):
        with WorkerPool(2) as pool:
            out = pool.map(_square, [np.arange(5), np.arange(3)])
        assert np.array_equal(out[0], np.arange(5) ** 2)

    def test_task_error_raises_poolerror_with_traceback(self):
        with WorkerPool(2) as pool:
            with pytest.raises(PoolError, match="unlucky") as exc:
                pool.map(_boom, [1, 13, 2])
            assert "ValueError" in exc.value.remote_traceback

    def test_worker_death_detected(self):
        with WorkerPool(2) as pool:
            with pytest.raises(PoolError, match="died|timed out"):
                pool.map(_suicide, [0, 1, 2, 3], timeout=10.0)

    def test_map_after_shutdown_raises(self):
        pool = WorkerPool(2)
        pool.shutdown()
        with pytest.raises(PoolError, match="shut down"):
            pool.map(_square, [1])

    def test_shutdown_idempotent(self):
        pool = WorkerPool(2)
        pool.shutdown()
        pool.shutdown()  # no error

    def test_context_manager_cleans_up(self):
        with WorkerPool(2) as pool:
            pool.map(_square, [1, 2])
        assert pool._closed

    def test_many_small_tasks(self):
        with WorkerPool(3) as pool:
            out = pool.map(_square, list(range(200)))
        assert out == [i * i for i in range(200)]

    def test_starmap_indices_alias(self):
        with WorkerPool(2) as pool:
            assert pool.starmap_indices(_square, iter([2, 3])) == [4, 9]
