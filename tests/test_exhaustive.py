"""Tests for the exhaustive (information-theoretic) decoder."""

import numpy as np
import pytest

from repro.core.design import PoolingDesign
from repro.core.exhaustive import (
    consistent_supports,
    count_consistent_by_overlap,
    exhaustive_decode,
)
from repro.core.signal import random_signal
from repro.core.thresholds import m_information_parallel


def _instance(n, k, m, seed):
    rng = np.random.default_rng(seed)
    sigma = random_signal(n, k, rng)
    design = PoolingDesign.sample(n, m, rng)
    return design, sigma, design.query_results(sigma)


class TestConsistency:
    def test_ground_truth_always_consistent(self):
        for seed in range(5):
            design, sigma, y = _instance(18, 3, 6, seed)
            supports = consistent_supports(design, y, 3)
            truth = set(np.flatnonzero(sigma).tolist())
            assert any(set(s.tolist()) == truth for s in supports)

    def test_unique_above_it_threshold(self):
        n, k = 24, 3
        m = int(3.0 * m_information_parallel(n, k))
        unique = 0
        for seed in range(10):
            design, sigma, y = _instance(n, k, m, seed)
            sigma_hat, count = exhaustive_decode(design, y, k)
            if count == 1:
                unique += 1
                assert np.array_equal(sigma_hat, sigma)
        assert unique >= 8  # w.h.p. at 3x the threshold

    def test_ambiguous_with_too_few_queries(self):
        design, sigma, y = _instance(20, 3, 1, 0)
        sigma_hat, count = exhaustive_decode(design, y, 3)
        assert count > 1
        assert sigma_hat is None

    def test_batching_does_not_change_result(self):
        design, sigma, y = _instance(16, 3, 8, 1)
        a = consistent_supports(design, y, 3, batch=7)
        b = consistent_supports(design, y, 3, batch=4096)
        assert len(a) == len(b)
        assert {tuple(s.tolist()) for s in a} == {tuple(s.tolist()) for s in b}

    def test_guard_rejects_large_search(self):
        rng = np.random.default_rng(0)
        design = PoolingDesign.sample(1000, 5, rng)
        with pytest.raises(ValueError, match="guard"):
            consistent_supports(design, np.zeros(5, dtype=np.int64), 10)

    def test_rejects_wrong_y_length(self):
        design, _, _ = _instance(16, 3, 8, 2)
        with pytest.raises(ValueError):
            consistent_supports(design, np.zeros(9, dtype=np.int64), 3)


class TestCensus:
    def test_census_excludes_ground_truth(self):
        design, sigma, y = _instance(16, 3, 30, 3)
        census = count_consistent_by_overlap(design, y, sigma, 3)
        assert set(census.keys()) == {0, 1, 2}  # overlap k excluded
        # With many queries there should be no alternatives at all.
        assert sum(census.values()) == 0

    def test_census_counts_alternatives(self):
        design, sigma, y = _instance(20, 3, 1, 4)
        census = count_consistent_by_overlap(design, y, sigma, 3)
        supports = consistent_supports(design, y, 3)
        assert sum(census.values()) == len(supports) - 1

    def test_census_validates_sigma_weight(self):
        design, sigma, y = _instance(16, 3, 5, 5)
        with pytest.raises(ValueError):
            count_consistent_by_overlap(design, y, sigma, 4)
