"""Cross-validation: the streaming kernel vs an explicitly materialised design.

``stream_design_stats`` never materialises the graph; this test rebuilds
the *same* edges (same stream keys, same batch layout) into a
:class:`PoolingDesign` and checks that every statistic agrees exactly —
the strongest possible check that the batched dedup kernel implements the
model's Ψ/Δ*/Δ/y semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design import PoolingDesign, default_gamma, stream_design_stats
from repro.core.signal import random_signal
from repro.rng.streams import StreamFamily


def _materialise_stream(n, m, root_seed, trial_key, batch_queries):
    """Rebuild the exact edge set the streaming path generates."""
    gamma = default_gamma(n)
    family = StreamFamily(root_seed)
    chunks = []
    b = 0
    lo = 0
    while lo < m:
        hi = min(m, lo + batch_queries)
        rng = family.generator(*trial_key, b)
        chunks.append(rng.integers(0, n, size=(hi - lo, gamma), dtype=np.int64))
        lo = hi
        b += 1
    entries = np.concatenate([c.ravel() for c in chunks])
    indptr = np.arange(m + 1, dtype=np.int64) * gamma
    return PoolingDesign(n, entries, indptr)


@pytest.mark.parametrize("batch_queries", [7, 64, 256])
def test_stream_equals_materialised(batch_queries):
    rng = np.random.default_rng(0)
    n, k, m = 180, 5, 90
    sigma = random_signal(n, k, rng)
    stats = stream_design_stats(sigma, m, root_seed=17, trial_key=(3,), batch_queries=batch_queries)
    design = _materialise_stream(n, m, 17, (3,), batch_queries)
    ref = design.stats(sigma)
    assert np.array_equal(stats.y, ref.y)
    assert np.array_equal(stats.psi, ref.psi)
    assert np.array_equal(stats.dstar, ref.dstar)
    assert np.array_equal(stats.delta, ref.delta)


def test_stream_equals_materialised_parallel():
    from repro.parallel.pool import WorkerPool

    rng = np.random.default_rng(1)
    n, k, m = 150, 4, 120
    sigma = random_signal(n, k, rng)
    with WorkerPool(3) as pool:
        stats = stream_design_stats(sigma, m, root_seed=23, trial_key=(1,), batch_queries=32, pool=pool)
    design = _materialise_stream(n, m, 23, (1,), 32)
    ref = design.stats(sigma)
    for field in ("y", "psi", "dstar", "delta"):
        assert np.array_equal(getattr(stats, field), getattr(ref, field)), field


@given(st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_property_stream_equals_materialised(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(10, 120))
    k = int(rng.integers(1, max(2, n // 5)))
    m = int(rng.integers(1, 60))
    batch = int(rng.integers(1, 80))
    sigma = random_signal(n, k, rng)
    stats = stream_design_stats(sigma, m, root_seed=seed % 2**31, batch_queries=batch)
    design = _materialise_stream(n, m, seed % 2**31, (), batch)
    ref = design.stats(sigma)
    for field in ("y", "psi", "dstar", "delta"):
        assert np.array_equal(getattr(stats, field), getattr(ref, field)), field
