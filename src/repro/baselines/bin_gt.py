"""Binary (OR-query) group testing: the §I-D comparator.

The paper's discussion highlights a striking fact: for ``θ ≤ ln2/(1+ln2) ≈
0.409`` the *binary* group-testing decoder of Coja-Oghlan, Gebhard,
Hahn-Klimroth & Loick (2021) — which observes only "was at least one
one-entry hit?" — needs ``ln⁻¹(2)·k·ln(n/k)`` parallel queries, *less* than
MN despite discarding the count information.  To let the benchmarks measure
that crossover we implement the standard near-optimal pipeline:

* **Design**: Bernoulli pooling — every entry joins every test
  independently with probability ``p = ln 2 / k`` (the information-
  optimal choice that makes tests positive with probability ½).
* **COMP** decoder: every entry appearing in some negative test is
  declared zero; everything else one.
* **DD** decoder: runs COMP's first phase, then declares one *only* those
  entries that appear in some positive test where every other member was
  already cleared (definite defectives).  DD dominates COMP for exact
  recovery in the sparse regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.signal import exact_recovery, overlap_fraction, random_signal, theta_to_k
from repro.util.validation import check_binary_signal, check_positive_int

__all__ = ["BernoulliORDesign", "comp_decode", "dd_decode", "run_gt_trial", "GTTrialResult"]


class BernoulliORDesign:
    """A Bernoulli OR-query design stored as a dense boolean matrix.

    Rows are tests, columns entries; the matrix is small enough in the
    comparator's regime (``m = O(k ln n)``, ``n ≤ 10^4``) that dense storage
    is the fastest option.
    """

    def __init__(self, membership: np.ndarray):
        membership = np.asarray(membership, dtype=bool)
        if membership.ndim != 2:
            raise ValueError("membership must be 2-D (tests x entries)")
        self.membership = membership

    @classmethod
    def sample(cls, n: int, m: int, k: int, rng: np.random.Generator) -> "BernoulliORDesign":
        """Draw the information-optimal Bernoulli design ``p = ln2/k``."""
        n = check_positive_int(n, "n")
        m = check_positive_int(m, "m")
        k = check_positive_int(k, "k")
        p = min(1.0, np.log(2.0) / k)
        return cls(rng.random((m, n)) < p)

    @property
    def m(self) -> int:
        """Number of tests."""
        return self.membership.shape[0]

    @property
    def n(self) -> int:
        """Number of entries."""
        return self.membership.shape[1]

    def query_results(self, sigma: np.ndarray) -> np.ndarray:
        """OR results: 1 iff the test pool contains a one-entry."""
        sigma = check_binary_signal(sigma, length=self.n)
        return (self.membership @ sigma.astype(np.int64) > 0).astype(np.int8)


def comp_decode(design: BernoulliORDesign, results: np.ndarray) -> np.ndarray:
    """COMP: clear every member of a negative test; the rest are ones."""
    results = np.asarray(results)
    if results.shape != (design.m,):
        raise ValueError(f"results must have length m={design.m}")
    negative_tests = design.membership[results == 0]
    cleared = negative_tests.any(axis=0) if negative_tests.size else np.zeros(design.n, dtype=bool)
    return (~cleared).astype(np.int8)


def dd_decode(design: BernoulliORDesign, results: np.ndarray) -> np.ndarray:
    """DD: definite defectives among COMP's surviving candidates.

    An entry is declared one iff some *positive* test contains it and no
    other COMP-surviving candidate.
    """
    results = np.asarray(results)
    if results.shape != (design.m,):
        raise ValueError(f"results must have length m={design.m}")
    candidates = comp_decode(design, results).astype(bool)
    positive = design.membership[results == 1]
    sigma_hat = np.zeros(design.n, dtype=np.int8)
    if positive.size:
        cand_counts = positive @ candidates.astype(np.int64)
        # Tests whose candidate-set is a singleton pin that candidate to one.
        singletons = positive[cand_counts == 1]
        if singletons.size:
            pinned = (singletons & candidates).any(axis=0)
            sigma_hat[pinned] = 1
    return sigma_hat


@dataclass(frozen=True)
class GTTrialResult:
    """Outcome of one binary-GT trial (both decoders on the same data)."""

    n: int
    k: int
    m: int
    comp_success: bool
    dd_success: bool
    dd_overlap: float


def run_gt_trial(n: int, m: int, *, theta: float, seed: int) -> GTTrialResult:
    """One teacher–student round through the OR-query channel."""
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    k = theta_to_k(n, theta)
    rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy=seed, spawn_key=(101,))))
    sigma = random_signal(n, k, rng)
    design = BernoulliORDesign.sample(n, m, k, rng)
    results = design.query_results(sigma)
    comp_hat = comp_decode(design, results)
    dd_hat = dd_decode(design, results)
    return GTTrialResult(
        n=n,
        k=k,
        m=m,
        comp_success=exact_recovery(sigma, comp_hat),
        dd_success=exact_recovery(sigma, dd_hat),
        dd_overlap=overlap_fraction(sigma, dd_hat),
    )
