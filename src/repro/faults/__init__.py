"""Deterministic fault injection for the serving substrate.

The chaos harness behind every recovery path: a seeded
:class:`~repro.faults.plan.FaultPlan` (ambient via ``REPRO_FAULT_PLAN``,
or installed programmatically) schedules worker kills, publisher crashes,
store corruption, transient decode exceptions and artificial latency at
named **trip sites** planted in the production code —
``worker.task`` (:mod:`repro.parallel.pool`),
``store.publish.pre_rename`` / ``store.publish`` and the fleet-tier
sites ``remote.fetch`` / ``remote.publish`` / ``remote.manifest``
(:mod:`repro.designs.store`) and ``serve.decode``
(:mod:`repro.serve.coalescer`).  Identical plans replay identical fault
sequences, so CI asserts that every *recovered* result is bit-identical
to a fault-free run (see ``docs/robustness.md`` and
``tests/test_faults.py``).
"""

from repro.faults.plan import (
    ACTIONS,
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultRule,
    InjectedFault,
    ambient_plan,
    bitflip_file,
    reset_ambient_plan,
    set_ambient_plan,
    trip,
    truncate_file,
)

__all__ = [
    "ACTIONS",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "ambient_plan",
    "set_ambient_plan",
    "reset_ambient_plan",
    "trip",
    "bitflip_file",
    "truncate_file",
]
