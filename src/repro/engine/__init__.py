"""The batched execution engine: backends, multi-signal facades, grids.

This layer turns the single-signal reproduction into a throughput-oriented
system without touching its semantics:

* :mod:`repro.engine.backend` — the :class:`Backend` protocol unifying the
  library's execution knobs (``pool=``, ``workers=``, ``blocks=``,
  ``batch_queries=``) behind one object, with :class:`SerialBackend` and
  :class:`SharedMemBackend` implementations.
* :mod:`repro.engine.batch` — :func:`reconstruct_batch`, the batched
  sibling of :func:`repro.reconstruct`: one shared pooling design decodes
  ``B`` signals in a single vectorised pass, bit-identical per signal to
  ``B`` independent calls with matched seeds.
* :mod:`repro.engine.grid` — the batched trial-grid runner behind the
  ``engine="batched"`` mode of the Fig. 3/4 sweeps.

Layering: ``parallel`` → ``engine.backend`` → ``core`` →
``engine.batch``/``engine.grid`` → ``experiments``.  Core never imports
the engine at module scope; the engine is the composition layer on top.
"""

from repro.engine.backend import (
    DEFAULT_BATCH_QUERIES,
    Backend,
    SerialBackend,
    SharedMemBackend,
    resolve_backend,
)
from repro.engine.batch import BatchReconstructionReport, reconstruct_batch, signals_oracle
from repro.engine.grid import BatchedPointResult, run_batched_point, run_batched_point_sweep, run_trial_grid

__all__ = [
    "DEFAULT_BATCH_QUERIES",
    "Backend",
    "SerialBackend",
    "SharedMemBackend",
    "resolve_backend",
    "BatchReconstructionReport",
    "reconstruct_batch",
    "signals_oracle",
    "BatchedPointResult",
    "run_batched_point",
    "run_batched_point_sweep",
    "run_trial_grid",
]
